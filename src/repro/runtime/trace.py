"""Structured tracing for the experiment runtime.

Every unit of work the runtime performs — a sweep point, a replication
run, a state-space generation, a relabel — emits one span record per
attempt: which phase it belongs to, which point index and attempt it was,
which worker ran it, how long it took (wall and CPU), and how it ended
(``ok``, ``retry``, ``failed``, ``cache_hit``, ``checkpoint_hit``,
``degraded``).  Records accumulate in memory on a :class:`TraceRecorder`
(aggregate counters are always maintained, so tracing is cheap enough to
leave on) and optionally stream to a JSONL file for chaos runs and CI
artifacts.

Span record schema (one JSON object per line in the JSONL file)::

    {"phase": "simulate", "event": "point", "index": 3, "attempt": 1,
     "status": "ok", "worker": 12345, "wall": 0.41, "cpu": 0.40,
     "ts": 1722870000.123}

``repro-experiments trace-summary <file>`` renders the aggregate view.
Span aggregates are mirrored onto the ``repro_runtime_*`` metrics of the
default registry (docs/OBSERVABILITY.md), so ``--metrics-out`` exports
cover worker utilization and retry counts without a trace file.

This recorder traces *runtime work spans*; the event-trajectory recorder
of the simulator is :class:`repro.sim.trace.EventTraceRecorder`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional

from ..obs import metrics as obs_metrics

#: Span statuses with a fixed meaning across the runtime.
STATUS_OK = "ok"
STATUS_RETRY = "retry"          # attempt failed, another one is coming
STATUS_FAILED = "failed"        # attempt failed and the budget is gone
STATUS_CACHE_HIT = "cache_hit"
STATUS_CACHE_MISS = "cache_miss"
STATUS_CHECKPOINT_HIT = "checkpoint_hit"
STATUS_DEGRADED = "degraded"    # process pool abandoned for serial


class TraceRecorder:
    """Collector of span records with always-on aggregate counters.

    ``path=None`` keeps records in memory only; with a path every record
    is also appended to a JSONL file as it happens, so a killed process
    leaves a usable trace behind.  Each record is appended with a single
    ``os.write`` on an ``O_APPEND`` descriptor: POSIX appends are atomic
    at that size, so several processes (chaos runs fork workers that
    trace into the same file) can never interleave partial lines.

    *emit_metrics* mirrors the aggregates onto the default metric
    registry; pass ``False`` when re-aggregating a historical file
    (:func:`summarize_events`) so old spans do not pollute live counters.
    """

    def __init__(
        self, path: Optional[str] = None, emit_metrics: bool = True
    ):
        self.path = path
        self.emit_metrics = emit_metrics
        self.events: List[Dict[str, Any]] = []
        self._fd: Optional[int] = None
        self._aggregate: Dict[str, Dict[str, float]] = {}
        self._status_counts: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def record(
        self,
        phase: str,
        event: str = "point",
        index: int = -1,
        attempt: int = 0,
        status: str = STATUS_OK,
        worker: Optional[int] = None,
        wall: float = 0.0,
        cpu: float = 0.0,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Emit one span record (returned for convenience)."""
        record = {
            "phase": phase,
            "event": event,
            "index": index,
            "attempt": attempt,
            "status": status,
            "worker": worker if worker is not None else os.getpid(),
            "wall": round(wall, 6),
            "cpu": round(cpu, 6),
            "ts": time.time(),
        }
        record.update(extra)
        self.events.append(record)
        self._aggregate_record(record)
        if self.path is not None:
            if self._fd is None:
                self._fd = os.open(
                    self.path,
                    os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                    0o644,
                )
            line = json.dumps(record, sort_keys=True) + "\n"
            os.write(self._fd, line.encode("utf-8"))
        return record

    def _aggregate_record(self, record: Dict[str, Any]) -> None:
        phase = self._aggregate.setdefault(
            record["phase"],
            {"spans": 0, "wall": 0.0, "cpu": 0.0, "retries": 0},
        )
        phase["spans"] += 1
        phase["wall"] += record["wall"]
        phase["cpu"] += record["cpu"]
        if record["status"] == STATUS_RETRY:
            phase["retries"] += 1
        status = record["status"]
        self._status_counts[status] = self._status_counts.get(status, 0) + 1
        if not self.emit_metrics:
            return
        registry = obs_metrics.get_registry()
        if not registry.enabled:
            return
        obs_metrics.RUNTIME_SPANS.on(registry).labels(
            phase=record["phase"], status=status
        ).inc()
        if record["wall"]:
            obs_metrics.RUNTIME_SPAN_SECONDS.on(registry).labels(
                phase=record["phase"]
            ).inc(record["wall"])
        obs_metrics.RUNTIME_WORKER_TASKS.on(registry).labels(
            worker=str(record["worker"])
        ).inc()

    # -- aggregate views ---------------------------------------------------

    def count(self, status: str) -> int:
        """Number of recorded spans with the given status."""
        return self._status_counts.get(status, 0)

    @property
    def retries(self) -> int:
        return self.count(STATUS_RETRY)

    @property
    def checkpoint_hits(self) -> int:
        return self.count(STATUS_CHECKPOINT_HIT)

    def summary(self) -> Dict[str, Any]:
        """Aggregated machine-readable view of everything recorded."""
        return {
            "statuses": dict(sorted(self._status_counts.items())),
            "phases": {
                name: dict(stats)
                for name, stats in sorted(self._aggregate.items())
            },
        }

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load the span records of a JSONL trace file (torn tail tolerated)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if position == len(lines) - 1:
                continue  # a kill mid-write tears at most the last line
            raise
    return events


def summarize_events(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate raw span records into the :meth:`TraceRecorder.summary`
    shape (used by ``trace-summary`` on a file written by another run)."""
    recorder = TraceRecorder(emit_metrics=False)
    for event in events:
        known = {
            key: event[key]
            for key in (
                "phase", "event", "index", "attempt", "status", "worker",
                "wall", "cpu",
            )
            if key in event
        }
        recorder.record(**known)
    return recorder.summary()


def render_summary(summary: Dict[str, Any], title: str = "trace summary") -> str:
    """Plain-text report of an aggregated trace."""
    from ..core.reporting import format_table

    lines = [f"=== {title} ==="]
    phase_rows = [
        [
            name,
            int(stats["spans"]),
            int(stats["retries"]),
            f"{stats['wall']:.3f}",
            f"{stats['cpu']:.3f}",
        ]
        for name, stats in summary["phases"].items()
    ]
    lines.append(
        format_table(
            ["phase", "spans", "retries", "wall [s]", "cpu [s]"],
            phase_rows,
        )
    )
    status_rows = [
        [status, count] for status, count in summary["statuses"].items()
    ]
    lines.append("")
    lines.append(format_table(["status", "spans"], status_rows))
    return "\n".join(lines)

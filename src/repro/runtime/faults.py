"""Deterministic fault injection for chaos testing the runtime.

A :class:`FaultInjector` decides, purely from its seed and the task's
``(index, attempt)`` pair, whether a worker task is killed, poisoned or
delayed.  Determinism is the point: a chaos run can be replayed exactly,
a test can predict which tasks will fault, and the parent process can
compute — without hearing back from a dead worker — whether a task that
vanished with its pool had a kill planned for it.

Fault kinds:

* ``kill``   — the worker process dies abruptly (``os._exit`` in a pool
  worker, so the whole pool breaks; a raised
  :class:`~repro.errors.WorkerFaultError` on the serial path).
* ``poison`` — the task raises :class:`~repro.errors.WorkerFaultError`,
  which travels back to the parent like any application error.
* ``delay``  — the task sleeps for ``delay_seconds`` before running.

By default a task faults on its first ``max_faults_per_task`` attempts
only, so a retrying executor always converges; raise the limit (or use
probability 1.0 with a large limit) to test retry-budget exhaustion.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..errors import WorkerFaultError

KILL = "kill"
POISON = "poison"
DELAY = "delay"


@dataclass(frozen=True)
class FaultInjector:
    """Seeded, replayable source of worker faults.

    Probabilities partition a deterministic uniform draw per
    ``(seed, index, attempt)``; explicit ``kill_indices`` /
    ``poison_indices`` force a fault on those task indices regardless of
    the draw (first attempts only, per ``max_faults_per_task``).
    """

    seed: int = 0
    kill: float = 0.0
    poison: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.005
    max_faults_per_task: int = 1
    kill_indices: FrozenSet[int] = field(default_factory=frozenset)
    poison_indices: FrozenSet[int] = field(default_factory=frozenset)

    def _draw(self, index: int, attempt: int) -> float:
        payload = f"{self.seed}:{index}:{attempt}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def plan(self, index: int, attempt: int) -> Optional[str]:
        """The fault (if any) this task attempt will suffer."""
        if attempt >= self.max_faults_per_task:
            return None
        if index in self.kill_indices:
            return KILL
        if index in self.poison_indices:
            return POISON
        draw = self._draw(index, attempt)
        if draw < self.kill:
            return KILL
        if draw < self.kill + self.poison:
            return POISON
        if draw < self.kill + self.poison + self.delay:
            return DELAY
        return None

    def apply(self, index: int, attempt: int, in_worker: bool) -> None:
        """Execute the planned fault for this attempt, if any.

        Called at the start of every task attempt.  ``in_worker`` selects
        the kill mechanics: a pool worker dies for real (``os._exit``),
        the serial path raises instead (there is no process to kill).
        """
        planned = self.plan(index, attempt)
        if planned is None:
            return
        if planned == DELAY:
            time.sleep(self.delay_seconds)
            return
        if planned == KILL and in_worker:
            os._exit(1)
        raise WorkerFaultError(
            f"injected {planned} fault on task {index} "
            f"(attempt {attempt})",
            index=index,
            attempt=attempt,
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        """Build an injector from a ``key=value,...`` CLI spec.

        Example: ``"seed=7,kill=0.1,poison=0.1,delay=0.3,delay-seconds=0.2"``.
        """
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip().replace("-", "_")
            value = value.strip()
            if key in ("seed", "max_faults_per_task"):
                kwargs[key] = int(value)
            elif key in ("kill", "poison", "delay", "delay_seconds"):
                kwargs[key] = float(value)
            elif key in ("kill_indices", "poison_indices"):
                kwargs[key] = frozenset(
                    int(v) for v in value.split("+") if v
                )
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(**kwargs)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in ("kill", "poison", "delay"):
            probability = getattr(self, name)
            if probability:
                parts.append(f"{name}={probability}")
        if self.kill_indices:
            parts.append(f"kill_indices={sorted(self.kill_indices)}")
        if self.poison_indices:
            parts.append(f"poison_indices={sorted(self.poison_indices)}")
        return "FaultInjector(" + ", ".join(parts) + ")"


def plan_preview(
    injector: FaultInjector, count: int, attempt: int = 0
) -> Tuple[Optional[str], ...]:
    """Planned faults for the first *count* task indices (tests/chaos UX)."""
    return tuple(injector.plan(index, attempt) for index in range(count))

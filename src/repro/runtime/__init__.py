"""Parallel, cache-aware execution runtime for sweeps and replications.

Three layers, threaded through the whole experiment stack:

* :class:`ParallelExecutor` — deterministic process-pool map with a serial
  fallback (``workers=1``), shared read-only payloads shipped once per
  worker, and input-order results; parallel runs are bit-identical to
  serial ones because every task derives its random stream from the master
  seed by index (``SeedSequence`` spawn keys).
* :class:`StructuralStateSpaceCache` — a sweep over a parameter that only
  appears in rate expressions reuses one generated state-space skeleton
  and relabels the rates per point instead of re-exploring.
* :class:`Timer` — named wall-clock spans around the generate / relabel /
  solve / simulate phases, surfaced in experiment reports and the
  ``BENCH_runtime.json`` scaling benchmark.

Plus a fault-tolerance and observability layer (see docs/RELIABILITY.md):

* :class:`RetryPolicy` — bounded per-task retries with exponential
  backoff; exhaustion raises the typed
  :class:`~repro.errors.RetryBudgetExceededError`.
* :class:`FaultInjector` — deterministic, seeded kill/poison/delay fault
  injection for chaos tests; a broken process pool is rebuilt and, after
  repeated worker deaths, execution degrades gracefully to serial.
* :class:`SweepCheckpoint` — an append-only JSONL journal of completed
  sweep points; an interrupted sweep resumes bit-identically.
* :class:`TraceRecorder` — flat per-attempt span records (phase, point
  index, worker, retries, wall/cpu time, cache and checkpoint hits)
  kept in memory and optionally streamed to JSONL.  **Deprecated for
  new instrumentation**: the hierarchical tracer of
  :mod:`repro.obs.tracing` supersedes it (the executor emits both, and
  ``repro-experiments trace-summary`` reads either format); the flat
  records remain as the compatibility view and the source of the
  ``repro_runtime_*`` metrics.

Every layer mirrors its counters onto the unified metric registry of
:mod:`repro.obs` (``repro_runtime_*``, ``repro_executor_*``,
``repro_cache_*``, ``repro_checkpoint_*``, ``repro_phase_*`` — see
docs/OBSERVABILITY.md), so a ``--metrics-out`` export captures worker
utilization, retry counts, cache hit ratios and checkpoint resume stats
without any extra wiring.
"""

from .checkpoint import SweepCheckpoint, sweep_fingerprint
from .executor import (
    DEFAULT_RETRY,
    NO_RETRY,
    ParallelExecutor,
    RetryPolicy,
    resolve_workers,
)
from .faults import FaultInjector
from .statespace_cache import (
    CacheStats,
    ParametricLTS,
    StructuralStateSpaceCache,
    generate_parametric,
    structural_params,
)
from .timing import Timer
from .trace import TraceRecorder, read_trace, render_summary, summarize_events

__all__ = [
    "CacheStats",
    "DEFAULT_RETRY",
    "FaultInjector",
    "NO_RETRY",
    "ParallelExecutor",
    "ParametricLTS",
    "RetryPolicy",
    "StructuralStateSpaceCache",
    "SweepCheckpoint",
    "Timer",
    "TraceRecorder",
    "generate_parametric",
    "read_trace",
    "render_summary",
    "resolve_workers",
    "structural_params",
    "summarize_events",
    "sweep_fingerprint",
]

"""Parallel, cache-aware execution runtime for sweeps and replications.

Three layers, threaded through the whole experiment stack:

* :class:`ParallelExecutor` — deterministic process-pool map with a serial
  fallback (``workers=1``), shared read-only payloads shipped once per
  worker, and input-order results; parallel runs are bit-identical to
  serial ones because every task derives its random stream from the master
  seed by index (``SeedSequence`` spawn keys).
* :class:`StructuralStateSpaceCache` — a sweep over a parameter that only
  appears in rate expressions reuses one generated state-space skeleton
  and relabels the rates per point instead of re-exploring.
* :class:`Timer` — named wall-clock spans around the generate / relabel /
  solve / simulate phases, surfaced in experiment reports and the
  ``BENCH_runtime.json`` scaling benchmark.
"""

from .executor import ParallelExecutor, resolve_workers
from .statespace_cache import (
    CacheStats,
    ParametricLTS,
    StructuralStateSpaceCache,
    generate_parametric,
    structural_params,
)
from .timing import Timer

__all__ = [
    "CacheStats",
    "ParallelExecutor",
    "ParametricLTS",
    "StructuralStateSpaceCache",
    "Timer",
    "generate_parametric",
    "resolve_workers",
    "structural_params",
]

"""Discrete-event (GSMP) simulation of generally-timed models.

The engine runs on the same state space the Markovian phase analyses — the
rate-labelled LTS produced by :mod:`repro.aemilia.semantics` — but accepts
generally distributed rates.  Semantics:

* Every *timed* transition belongs to an **event** (its active activity,
  e.g. ``S.serve``).  When an event first becomes enabled, its duration is
  sampled from the rate's distribution; the clock then runs down across
  states as long as the event stays enabled (**enabling memory**).  An event
  that becomes disabled loses its clock; re-enabling samples afresh.
* The event with the smallest residual clock fires.  If the event has
  several branch transitions (probabilistic delivery to one of several
  passive partners), one branch is selected by branch weight.
* States whose transitions are **immediate** are vanishing: one immediate
  transition is selected by weight and fired in zero time.  Unboundedly
  long immediate chains indicate a timeless divergence and abort the run.
* Deadlock states simply let the remaining horizon elapse.

The enabling-memory rule is what gives deterministic timeouts their correct
semantics (the DPM's periodic wake-up keeps counting down while the system
moves); for exponential models it coincides with resampling (memorylessness)
so the cross-validation against the CTMC (Sect. 5.1) is exact in
distribution.  The ablation benchmark compares against restart semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..aemilia.rates import (
    ExpRate,
    GeneralRate,
    ImmediateRate,
    PassiveRate,
)
from ..ctmc.measures import Measure
from ..errors import SimulationError
from ..lts.lts import LTS, Transition
from ..distributions import Distribution, Exponential
from ..obs import metrics as obs_metrics
from .estimators import MeasureAccumulator, make_accumulators

#: Abort a run after this many consecutive zero-time firings.
_MAX_IMMEDIATE_CHAIN = 100_000


@dataclass
class _Event:
    """A schedulable activity of one state: distribution + branches."""

    name: str
    distribution: Distribution
    branches: List[Transition]
    total_weight: float


@dataclass
class _StateSchedule:
    """Compiled per-state view: either vanishing or a set of timed events."""

    immediate: Optional[List[Transition]]
    immediate_total_weight: float
    events: Dict[str, _Event]


@dataclass
class SimulationResult:
    """Outcome of a single simulation run."""

    measures: Dict[str, float]
    horizon: float
    events_fired: int
    final_state: int
    deadlocked: bool
    #: Residual clocks of the events enabled when the horizon was
    #: reached.  Feeding them back via ``run(..., start_clocks=...)``
    #: continues the trajectory without perturbing enabling-memory
    #: schedules — what batch-means needs so a batch boundary is not a
    #: spurious regeneration point for deterministic/Gaussian timers.
    final_clocks: Dict[str, float] = field(default_factory=dict)


class Simulator:
    """Reusable simulator for one model (LTS) and measure set."""

    def __init__(
        self,
        lts: LTS,
        measures: Sequence[Measure],
        clock_semantics: str = "enabling_memory",
    ):
        if clock_semantics not in ("enabling_memory", "restart"):
            raise SimulationError(
                f"unknown clock semantics {clock_semantics!r} "
                f"(use enabling_memory or restart)"
            )
        self.lts = lts
        self.measures = list(measures)
        self.clock_semantics = clock_semantics
        self._schedules: Dict[int, _StateSchedule] = {}
        # Self-loop events can be skipped unless a TRANS_REWARD clause
        # counts their firings: they never change the state and only slow
        # the run down.  (STATE_REWARD clauses look at *enabled* labels,
        # which needs no firing.)
        from ..ctmc.measures import RewardKind

        self._observed_selfloop_labels = set()
        for measure_obj in self.measures:
            for clause in measure_obj.clauses:
                if clause.kind is RewardKind.TRANS:
                    self._observed_selfloop_labels.add(clause.pattern)

    # -- schedule compilation ---------------------------------------------

    def _compile(self, state: int) -> _StateSchedule:
        schedule = self._schedules.get(state)
        if schedule is not None:
            return schedule
        transitions = self.lts.outgoing(state)
        immediate = [
            t for t in transitions if isinstance(t.rate, ImmediateRate)
        ]
        if immediate:
            if len(immediate) != len(transitions):
                raise SimulationError(
                    f"state {self.lts.state_info(state)} mixes immediate "
                    f"and timed transitions"
                )
            total = sum(t.rate.weight for t in immediate)
            schedule = _StateSchedule(immediate, total, {})
            self._schedules[state] = schedule
            return schedule
        events: Dict[str, _Event] = {}
        for transition in transitions:
            rate = transition.rate
            if isinstance(rate, PassiveRate):
                raise SimulationError(
                    f"passive transition {transition.label!r} in state "
                    f"{self.lts.state_info(state)}: the timed model must "
                    f"close every passive action"
                )
            if isinstance(rate, ExpRate):
                distribution: Distribution = Exponential(rate.rate)
            elif isinstance(rate, GeneralRate):
                distribution = rate.distribution
            else:
                raise SimulationError(
                    f"transition {transition.label!r} has no usable rate "
                    f"({rate!r})"
                )
            event_name = transition.event or transition.label
            if isinstance(rate, ExpRate):
                # The generator pre-splits exponential activities across
                # probabilistic branches (exact for CTMCs).  A race of the
                # split exponentials is statistically identical to the
                # original activity (memorylessness), so each branch can
                # be its own event; clock persistence is immaterial for
                # exponentials.
                event_name = f"{event_name}::exp{len(events)}"
            event = events.get(event_name)
            if event is None:
                events[event_name] = _Event(
                    event_name, distribution, [transition], transition.weight
                )
            else:
                if event.distribution != distribution:
                    raise SimulationError(
                        f"event {event_name!r} in state "
                        f"{self.lts.state_info(state)} has branches with "
                        f"different distributions ({event.distribution} vs "
                        f"{distribution})"
                    )
                event.branches.append(transition)
                event.total_weight += transition.weight
        # Monitor self-loops that no measure observes never change the
        # state: skip scheduling them entirely (pure speed-up).
        events = {
            name: event
            for name, event in events.items()
            if not all(
                branch.source == branch.target
                and not self._selfloop_observed(branch.label)
                for branch in event.branches
            )
        }
        schedule = _StateSchedule(None, 0.0, events)
        self._schedules[state] = schedule
        return schedule

    def _selfloop_observed(self, label: str) -> bool:
        from ..lts.labels import matches

        return any(
            matches(pattern, label)
            for pattern in self._observed_selfloop_labels
        )

    # -- running -------------------------------------------------------------

    def run(
        self,
        run_length: float,
        rng: Optional[np.random.Generator],
        warmup: float = 0.0,
        start_state: Optional[int] = None,
        observer=None,
        start_clocks: Optional[Dict[str, float]] = None,
        streams=None,
    ) -> SimulationResult:
        """Simulate one trajectory and estimate the measures.

        ``run_length`` is the *measured* horizon: the trajectory lasts
        ``warmup + run_length`` model time units and statistics collected
        during the warm-up are discarded.  An optional *observer* callable
        receives ``(time, label, target_state)`` at every firing.
        ``start_clocks`` (with ``start_state``) resumes a trajectory from
        a previous run's ``final_clocks``: events still enabled keep
        their residual clocks instead of being resampled.

        ``streams`` (a :class:`repro.sim.streams.RunStreams`) switches
        randomness from the single shared ``rng`` to per-event-type
        substreams — the common-random-numbers discipline shared with the
        vectorized kernel (docs/SIMULATION.md).  With ``streams`` set the
        trajectory is bit-identical to the fast engine's for the same
        allocator parameters, and ``rng`` may be ``None``.
        """
        if run_length <= 0:
            raise SimulationError(f"run_length must be positive, got {run_length}")
        if warmup < 0:
            raise SimulationError(f"warmup must be >= 0, got {warmup}")
        if rng is None and streams is None:
            raise SimulationError("run() needs an rng or a streams sampler")
        started = time.perf_counter()
        accumulators = make_accumulators(self.measures, self.lts)
        state = self.lts.initial if start_state is None else start_state
        now = 0.0
        end = warmup + run_length
        clocks: Dict[str, float] = dict(start_clocks or {})
        fired = 0
        immediate_chain = 0
        deadlocked = False
        while now < end:
            schedule = self._compile(state)
            if schedule.immediate is not None:
                immediate_chain += 1
                if immediate_chain > _MAX_IMMEDIATE_CHAIN:
                    raise SimulationError(
                        f"more than {_MAX_IMMEDIATE_CHAIN} consecutive "
                        f"immediate firings: timeless divergence near "
                        f"{self.lts.state_info(state)}"
                    )
                transition = self._choose_weighted(
                    schedule.immediate,
                    schedule.immediate_total_weight,
                    rng,
                    streams,
                )
                if now >= warmup:
                    for accumulator in accumulators:
                        accumulator.on_fire(transition.label)
                if observer is not None:
                    observer(now, transition.label, transition.target)
                state = transition.target
                fired += 1
                continue
            immediate_chain = 0
            events = schedule.events
            if not events:
                deadlocked = True
                elapsed = end - now
                self._accumulate_time(
                    accumulators, state, now, elapsed, warmup
                )
                now = end
                break
            if self.clock_semantics == "restart":
                clocks = {}
            # Keep clocks of still-enabled events, sample the new ones.
            clocks = {
                name: remaining
                for name, remaining in clocks.items()
                if name in events
            }
            for name, event in events.items():
                if name not in clocks:
                    clocks[name] = (
                        streams.duration(name, event.distribution)
                        if streams is not None
                        else event.distribution.sample(rng)
                    )
            # Exact clock ties (deterministic timers) break by event name,
            # matching the fast engine's lexicographic event order.
            winner = min(clocks, key=lambda name: (clocks[name], name))
            elapsed = clocks[winner]
            if now + elapsed >= end:
                # Horizon reached before the next firing: let the
                # remaining clocks run down to the horizon so a resumed
                # run carries the correct residuals.
                remaining = end - now
                self._accumulate_time(
                    accumulators, state, now, remaining, warmup
                )
                for name in clocks:
                    clocks[name] -= remaining
                now = end
                break
            self._accumulate_time(accumulators, state, now, elapsed, warmup)
            now += elapsed
            for name in clocks:
                clocks[name] -= elapsed
            del clocks[winner]
            event = events[winner]
            transition = self._choose_weighted(
                event.branches, event.total_weight, rng, streams
            )
            if now >= warmup:
                for accumulator in accumulators:
                    accumulator.on_fire(transition.label)
            if observer is not None:
                observer(now, transition.label, transition.target)
            state = transition.target
            fired += 1
        values = {
            accumulator.measure.name: accumulator.value(run_length)
            for accumulator in accumulators
        }
        self._record_run_metrics(
            fired, deadlocked, start_clocks, time.perf_counter() - started
        )
        return SimulationResult(
            values, run_length, fired, state, deadlocked, dict(clocks)
        )

    @staticmethod
    def _record_run_metrics(
        fired: int,
        deadlocked: bool,
        start_clocks: Optional[Dict[str, float]],
        elapsed: float,
    ) -> None:
        """Always-on aggregate metrics for one completed run.

        A handful of counter bumps after the trajectory is done — the
        event loop itself is untouched, and the RNG stream never sees
        the instrumentation (docs/OBSERVABILITY.md).
        """
        registry = obs_metrics.get_registry()
        if not registry.enabled:
            return
        obs_metrics.SIM_RUNS.on(registry).inc()
        obs_metrics.SIM_EVENTS.on(registry).inc(fired)
        if deadlocked:
            obs_metrics.SIM_DEADLOCKS.on(registry).inc()
        if start_clocks:
            obs_metrics.SIM_CLOCK_CARRIES.on(registry).inc(
                len(start_clocks)
            )
        obs_metrics.SIM_RUN_SECONDS.on(registry).observe(elapsed)
        if elapsed > 0.0:
            obs_metrics.SIM_EVENT_RATE.on(registry).set(fired / elapsed)

    @staticmethod
    def _accumulate_time(
        accumulators: List[MeasureAccumulator],
        state: int,
        now: float,
        elapsed: float,
        warmup: float,
    ) -> None:
        """Credit sojourn time to the accumulators, clipping the warm-up."""
        if elapsed <= 0:
            return
        measured_start = max(now, warmup)
        measured_elapsed = now + elapsed - measured_start
        if measured_elapsed <= 0:
            return
        for accumulator in accumulators:
            accumulator.accumulate_time(state, measured_elapsed)

    @staticmethod
    def _choose_weighted(
        transitions: List[Transition],
        total_weight: float,
        rng: Optional[np.random.Generator],
        streams=None,
    ) -> Transition:
        if len(transitions) == 1:
            return transitions[0]
        if streams is not None:
            pick = streams.branch() * total_weight
        else:
            pick = rng.uniform(0.0, total_weight)
        acc = 0.0
        for transition in transitions:
            weight = (
                transition.rate.weight
                if isinstance(transition.rate, ImmediateRate)
                else transition.weight
            )
            acc += weight
            if pick <= acc:
                return transition
        return transitions[-1]


def simulate(
    lts: LTS,
    measures: Sequence[Measure],
    run_length: float,
    rng: np.random.Generator,
    warmup: float = 0.0,
    clock_semantics: str = "enabling_memory",
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(lts, measures, clock_semantics)
    return simulator.run(run_length, rng, warmup)

"""Vectorized GSMP kernel: many replications advanced in lock-step.

:class:`FastSimulator` runs the same generalized semi-Markov process the
pure-Python reference engine (:mod:`repro.sim.engine`) runs, but batches
*across replications*: clock sampling, minimum-clock selection, branch
choice and reward accumulation are numpy operations over all runs at
once, so the per-event cost amortises the interpreter overhead that
dominates the reference loop.  Design (docs/SIMULATION.md):

* **Compilation.**  :class:`CompiledModel` reuses the reference engine's
  per-state schedules verbatim (same event naming, self-loop skipping
  and vanishing-state rules), then flattens them into dense tables —
  event types in *lexicographic name order*, per-state enabled masks,
  padded cumulative branch weights, per-state reward rows.
* **Bit-exactness by construction.**  Both engines draw durations and
  branch uniforms from the same :class:`~repro.sim.streams
  .EventStreamAllocator` substreams, in the same per-stream order, and
  replay the reference engine's floating-point operations (sojourn
  crediting, clock decrements, warm-up clipping) operation for
  operation.  For the same ``(seed, run index)`` the two engines produce
  identical event sequences and identical measure values — this is what
  the differential suite pins.
* **Tie-breaking.**  Exact clock ties (deterministic timers) resolve by
  event name in both engines: the reference picks the lexicographically
  smallest name, the kernel's ``argmin`` picks the lowest event id, and
  ids are assigned in sorted-name order.

The reference engine stays the semantics oracle; this module must never
redefine behaviour, only reproduce it faster.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..ctmc.measures import Measure
from ..errors import SimulationError
from ..lts.lts import LTS
from ..obs import metrics as obs_metrics
from ..obs import tracing
from .engine import SimulationResult, Simulator, _MAX_IMMEDIATE_CHAIN
from .estimators import CompiledRewards
from .streams import EventStreamAllocator, normalize_stream_index

__all__ = ["CompiledModel", "FastSimulator"]

_KIND_TIMED = 0
_KIND_IMMEDIATE = 1
_KIND_DEADLOCK = 2

#: Observer callback: ``(run_row, time, label, target_state)``.
Observer = Callable[[int, float, str, int], None]


class CompiledModel:
    """Dense-array form of one model's schedules, shared across batches."""

    def __init__(
        self,
        lts: LTS,
        measures: Sequence[Measure],
        clock_semantics: str = "enabling_memory",
    ):
        self.lts = lts
        self.measures = list(measures)
        self.clock_semantics = clock_semantics
        #: The reference engine whose compiled schedules define the
        #: semantics; also handy as the oracle in differential tests.
        self.reference = Simulator(lts, measures, clock_semantics)
        states = list(lts.states())
        n_states = len(states)
        schedules = [self.reference._compile(s) for s in states]

        names = sorted(
            {name for sched in schedules for name in sched.events}
        )
        self.event_names: List[str] = names
        self.event_ids: Dict[str, int] = {
            name: e for e, name in enumerate(names)
        }
        n_events = len(names)
        self.n_states = n_states
        self.n_events = n_events

        rewards = CompiledRewards(self.measures, lts)
        self.state_rewards = rewards.state_reward_matrix(n_states)

        max_kt = 1
        max_ki = 1
        for sched in schedules:
            if sched.immediate is not None:
                max_ki = max(max_ki, len(sched.immediate))
            else:
                for event in sched.events.values():
                    max_kt = max(max_kt, len(event.branches))

        self.kind = np.full(n_states, _KIND_TIMED, np.int8)
        self.enabled = np.zeros((n_states, n_events), bool)
        self.dist_ids = np.zeros((n_states, n_events), np.int64)
        self.dists: List = []
        dist_ids: Dict = {}

        # Cumulative branch weights are padded with +inf so the branch
        # pick `(cum < pick).sum()` can never select a padding slot.
        self.br_cum = np.full((n_states, n_events, max_kt), np.inf)
        self.br_target = np.zeros((n_states, n_events, max_kt), np.int64)
        self.br_label = np.zeros((n_states, n_events, max_kt), np.int64)
        self.br_count = np.zeros((n_states, n_events), np.int64)
        self.br_total = np.zeros((n_states, n_events))

        self.im_cum = np.full((n_states, max_ki), np.inf)
        self.im_target = np.zeros((n_states, max_ki), np.int64)
        self.im_label = np.zeros((n_states, max_ki), np.int64)
        self.im_count = np.zeros(n_states, np.int64)
        self.im_total = np.zeros(n_states)

        for state, sched in zip(states, schedules):
            if sched.immediate is not None:
                self.kind[state] = _KIND_IMMEDIATE
                self.im_count[state] = len(sched.immediate)
                self.im_total[state] = sched.immediate_total_weight
                acc = 0.0
                for k, transition in enumerate(sched.immediate):
                    acc += transition.rate.weight
                    self.im_cum[state, k] = acc
                    self.im_target[state, k] = transition.target
                    self.im_label[state, k] = rewards.label_row(
                        transition.label
                    )
                continue
            if not sched.events:
                self.kind[state] = _KIND_DEADLOCK
                continue
            for name, event in sched.events.items():
                e = self.event_ids[name]
                self.enabled[state, e] = True
                did = dist_ids.get(event.distribution)
                if did is None:
                    did = len(self.dists)
                    dist_ids[event.distribution] = did
                    self.dists.append(event.distribution)
                self.dist_ids[state, e] = did
                self.br_count[state, e] = len(event.branches)
                self.br_total[state, e] = event.total_weight
                acc = 0.0
                for k, transition in enumerate(event.branches):
                    acc += transition.weight
                    self.br_cum[state, e, k] = acc
                    self.br_target[state, e, k] = transition.target
                    self.br_label[state, e, k] = rewards.label_row(
                        transition.label
                    )

        self.labels, self.label_rewards = rewards.finalize()

        # Per-event distribution shortcut: almost every event type has
        # the same distribution in every state that enables it, letting
        # the sampling loop skip the per-state distribution grouping.
        self.col_dist = np.full(n_events, -1, np.int64)
        for e in range(n_events):
            mask = self.enabled[:, e]
            if mask.any():
                ids = np.unique(self.dist_ids[mask, e])
                if ids.size == 1:
                    self.col_dist[e] = ids[0]


class FastSimulator:
    """Reusable vectorized simulator for one model and measure set."""

    def __init__(
        self,
        lts: LTS,
        measures: Sequence[Measure],
        clock_semantics: str = "enabling_memory",
        model: Optional[CompiledModel] = None,
    ):
        if model is not None:
            self.model = model
        else:
            self.model = CompiledModel(lts, measures, clock_semantics)

    @property
    def lts(self) -> LTS:
        return self.model.lts

    @property
    def measures(self) -> List[Measure]:
        return self.model.measures

    @property
    def clock_semantics(self) -> str:
        return self.model.clock_semantics

    def run_many(
        self,
        run_length: float,
        seed: Optional[int] = None,
        runs: Optional[int] = None,
        warmup: float = 0.0,
        run_indices: Optional[Sequence[int]] = None,
        start_states: Optional[Sequence[int]] = None,
        start_clocks: Optional[Sequence[Optional[Dict[str, float]]]] = None,
        allocator: Optional[EventStreamAllocator] = None,
        observer: Optional[Observer] = None,
    ) -> List[SimulationResult]:
        """Simulate a batch of replications, one result per run.

        Randomness comes from per-``(run, event type)`` substreams: pass
        ``seed`` (+ ``runs`` or ``run_indices``) to build the allocator,
        or pass a prepared ``allocator`` (CRN pairing shares stream
        parameters between two allocators — see
        :func:`repro.sim.streams.paired_allocators`).  ``run_indices``
        name the absolute replication indices, so a worker processing a
        slice produces exactly the serial batch's runs.

        ``start_states``/``start_clocks`` (one entry per run) resume
        trajectories from previous results — the batch-means clock-carry
        contract of the reference engine, batched.  ``observer`` is
        called as ``(run_row, time, label, target_state)`` at every
        firing, in a deterministic order (runs ascending within a step).
        """
        if run_length <= 0:
            raise SimulationError(
                f"run_length must be positive, got {run_length}"
            )
        if warmup < 0:
            raise SimulationError(f"warmup must be >= 0, got {warmup}")
        if run_indices is None:
            if runs is None:
                if allocator is not None:
                    run_indices = list(allocator.run_indices)
                else:
                    raise SimulationError(
                        "run_many() needs runs= or run_indices="
                    )
            else:
                run_indices = list(range(runs))
        else:
            run_indices = [
                normalize_stream_index(i) for i in run_indices
            ]
        n_runs = len(run_indices)
        if n_runs == 0:
            return []
        if allocator is None:
            if seed is None:
                raise SimulationError(
                    "run_many() needs a seed or an allocator"
                )
            allocator = EventStreamAllocator(seed, run_indices)
        elif allocator.run_indices != run_indices:
            raise SimulationError(
                f"allocator run indices {allocator.run_indices} do not "
                f"match requested {run_indices}"
            )

        model = self.model
        started = time.perf_counter()
        refills_before = allocator.refills

        states = np.full(n_runs, model.lts.initial, np.int64)
        if start_states is not None:
            states = np.asarray(list(start_states), np.int64).copy()
            if states.shape != (n_runs,):
                raise SimulationError(
                    f"start_states must have one entry per run "
                    f"({n_runs}), got shape {states.shape}"
                )
        clocks = np.full((n_runs, model.n_events), np.inf)
        if start_clocks is not None:
            for row, carried in enumerate(start_clocks):
                if not carried:
                    continue
                for name, value in carried.items():
                    e = model.event_ids.get(name)
                    if e is not None:
                        clocks[row, e] = value

        now = np.zeros(n_runs)
        end = warmup + run_length
        finished = np.zeros(n_runs, bool)
        deadlocked = np.zeros(n_runs, bool)
        fired = np.zeros(n_runs, np.int64)
        imm_chain = np.zeros(n_runs, np.int64)
        n_measures = len(model.measures)
        time_weighted = np.zeros((n_runs, n_measures))
        impulses = np.zeros((n_runs, n_measures))
        steps = 0
        all_rows = np.arange(n_runs)
        restart = model.clock_semantics == "restart"

        kind = model.kind
        enabled = model.enabled
        dist_ids = model.dist_ids
        col_dist = model.col_dist
        event_names = model.event_names
        dists = model.dists
        state_rewards = model.state_rewards
        label_rewards = model.label_rewards

        live = all_rows
        while live.size:
            steps += 1
            k = kind[states[live]]

            # -- vanishing states: fire immediates until none remain ----
            rows = first_rows = live[k == _KIND_IMMEDIATE]
            while rows.size:
                imm_chain[rows] += 1
                over = imm_chain[rows] > _MAX_IMMEDIATE_CHAIN
                if over.any():
                    culprit = int(states[rows[over][0]])
                    raise SimulationError(
                        f"more than {_MAX_IMMEDIATE_CHAIN} consecutive "
                        f"immediate firings: timeless divergence near "
                        f"{model.lts.state_info(culprit)}"
                    )
                st = states[rows]
                choice = np.zeros(rows.size, np.int64)
                multi = model.im_count[st] > 1
                if multi.any():
                    pick = (
                        allocator.branch_uniforms(rows[multi])
                        * model.im_total[st[multi]]
                    )
                    choice[multi] = (
                        model.im_cum[st[multi]] < pick[:, None]
                    ).sum(axis=1)
                labels = model.im_label[st, choice]
                targets = model.im_target[st, choice]
                measuring = now[rows] >= warmup
                if measuring.any():
                    # Row indices are unique within a step, so plain
                    # fancy-index accumulation is safe (and fast).
                    impulses[rows[measuring]] += label_rewards[
                        labels[measuring]
                    ]
                if observer is not None:
                    for i, row in enumerate(rows):
                        observer(
                            int(row),
                            float(now[row]),
                            model.labels[labels[i]],
                            int(targets[i]),
                        )
                states[rows] = targets
                fired[rows] += 1
                rows = rows[kind[targets] == _KIND_IMMEDIATE]
            if first_rows.size:
                imm_chain[first_rows] = 0
                k = kind[states[live]]

            # -- deadlock states: let the remaining horizon elapse ------
            rows = live[k == _KIND_DEADLOCK]
            if rows.size:
                elapsed = end - now[rows]
                measured_start = np.maximum(now[rows], warmup)
                measured = np.maximum(
                    now[rows] + elapsed - measured_start, 0.0
                )
                time_weighted[rows] += (
                    state_rewards[states[rows]] * measured[:, None]
                )
                now[rows] = end
                deadlocked[rows] = True
                finished[rows] = True
                dead = True
            else:
                dead = False

            # -- timed states: one firing (or horizon) per run ----------
            rows = live[k == _KIND_TIMED]
            if dead:
                live = live[~finished[live]]
            if rows.size == 0:
                continue
            st = states[rows]
            ena = enabled[st]
            if restart:
                c = np.full(ena.shape, np.inf)
                need = ena
            else:
                c = np.where(ena, clocks[rows], np.inf)
                need = ena & np.isinf(c)
            if need.any():
                for e in np.nonzero(need.any(axis=0))[0]:
                    sel = np.nonzero(need[:, e])[0]
                    did = col_dist[e]
                    if did >= 0:
                        c[sel, e] = allocator.take(
                            event_names[e], dists[did], rows[sel]
                        )
                    else:
                        dids = dist_ids[st[sel], e]
                        for did in np.unique(dids):
                            subset = sel[dids == did]
                            c[subset, e] = allocator.take(
                                event_names[e], dists[did], rows[subset]
                            )
            winner = np.argmin(c, axis=1)
            local = np.arange(rows.size)
            elapsed = c[local, winner]
            new_now = now[rows] + elapsed
            over = new_now >= end
            used = np.where(over, end - now[rows], elapsed)
            measured_start = np.maximum(now[rows], warmup)
            measured = np.maximum(now[rows] + used - measured_start, 0.0)
            time_weighted[rows] += state_rewards[st] * measured[:, None]
            c -= used[:, None]
            firing = ~over
            c[local[firing], winner[firing]] = np.inf
            clocks[rows] = c
            now[rows] = np.where(over, end, new_now)
            done = rows[over]
            if done.size:
                finished[done] = True
                live = live[~finished[live]]
            if firing.any():
                frows = rows[firing]
                fst = st[firing]
                fwin = winner[firing]
                choice = np.zeros(frows.size, np.int64)
                multi = model.br_count[fst, fwin] > 1
                if multi.any():
                    pick = (
                        allocator.branch_uniforms(frows[multi])
                        * model.br_total[fst[multi], fwin[multi]]
                    )
                    choice[multi] = (
                        model.br_cum[fst[multi], fwin[multi]]
                        < pick[:, None]
                    ).sum(axis=1)
                labels = model.br_label[fst, fwin, choice]
                targets = model.br_target[fst, fwin, choice]
                fire_now = new_now[firing]
                measuring = fire_now >= warmup
                if measuring.any():
                    impulses[frows[measuring]] += label_rewards[
                        labels[measuring]
                    ]
                if observer is not None:
                    for i in range(frows.size):
                        observer(
                            int(frows[i]),
                            float(fire_now[i]),
                            model.labels[labels[i]],
                            int(targets[i]),
                        )
                states[frows] = targets
                fired[frows] += 1

        values_matrix = (time_weighted + impulses) / run_length
        results = []
        for row in range(n_runs):
            residual = clocks[row]
            final_clocks = {
                model.event_names[e]: float(residual[e])
                for e in np.nonzero(np.isfinite(residual))[0]
            }
            values = {
                measure.name: float(values_matrix[row, j])
                for j, measure in enumerate(model.measures)
            }
            results.append(
                SimulationResult(
                    values,
                    run_length,
                    int(fired[row]),
                    int(states[row]),
                    bool(deadlocked[row]),
                    final_clocks,
                )
            )
        self._record_batch_metrics(
            n_runs,
            int(fired.sum()),
            steps,
            allocator.refills - refills_before,
            time.perf_counter() - started,
        )
        return results

    @staticmethod
    def _record_batch_metrics(
        runs: int, events: int, steps: int, refills: int, elapsed: float
    ) -> None:
        """Aggregate counters (and a trace span) per completed batch."""
        tracing.record_span(
            "fastengine:batch",
            elapsed,
            runs=runs,
            events=events,
            steps=steps,
        )
        registry = obs_metrics.get_registry()
        if not registry.enabled:
            return
        obs_metrics.FASTSIM_RUNS.on(registry).inc(runs)
        obs_metrics.FASTSIM_EVENTS.on(registry).inc(events)
        obs_metrics.FASTSIM_STEPS.on(registry).inc(steps)
        obs_metrics.FASTSIM_REFILLS.on(registry).inc(refills)
        obs_metrics.FASTSIM_BATCH_SECONDS.on(registry).observe(elapsed)
        if elapsed > 0.0:
            obs_metrics.FASTSIM_EVENT_RATE.on(registry).set(
                events / elapsed
            )

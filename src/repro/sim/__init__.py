"""Discrete-event simulation of generally-timed models (Sect. 5 phase)."""

from .distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Normal,
    Uniform,
    Weibull,
    make_distribution,
)
from .batch_means import BatchMeansResult, batch_means, paired_batch_delta
from .engine import SimulationResult, Simulator, simulate
from .estimators import (
    CompiledRewards,
    MeasureAccumulator,
    make_accumulators,
)
from .fastengine import CompiledModel, FastSimulator
from .output import (
    ENGINES,
    Estimate,
    PairedReplicationResult,
    ReplicationResult,
    replicate,
    replicate_paired,
    replicate_until,
    resolve_engine,
    summarize,
    summarize_paired,
)
from .random import (
    event_generator,
    event_stream_key,
    generator_for_run,
    make_generator,
    spawn_generators,
)
from .streams import (
    EventStreamAllocator,
    RunStreams,
    independent_allocator,
    paired_allocators,
)
from .trace import EventTraceRecorder, TraceEntry, TraceRecorder

__all__ = [
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "Normal",
    "Uniform",
    "Weibull",
    "make_distribution",
    "BatchMeansResult",
    "batch_means",
    "paired_batch_delta",
    "SimulationResult",
    "Simulator",
    "simulate",
    "CompiledRewards",
    "MeasureAccumulator",
    "make_accumulators",
    "CompiledModel",
    "FastSimulator",
    "ENGINES",
    "Estimate",
    "PairedReplicationResult",
    "ReplicationResult",
    "replicate",
    "replicate_paired",
    "replicate_until",
    "resolve_engine",
    "summarize",
    "summarize_paired",
    "event_generator",
    "event_stream_key",
    "generator_for_run",
    "make_generator",
    "spawn_generators",
    "EventStreamAllocator",
    "RunStreams",
    "independent_allocator",
    "paired_allocators",
    "EventTraceRecorder",
    "TraceEntry",
    "TraceRecorder",
]

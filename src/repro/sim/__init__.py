"""Discrete-event simulation of generally-timed models (Sect. 5 phase)."""

from .distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Normal,
    Uniform,
    Weibull,
    make_distribution,
)
from .batch_means import BatchMeansResult, batch_means
from .engine import SimulationResult, Simulator, simulate
from .estimators import MeasureAccumulator, make_accumulators
from .output import (
    Estimate,
    ReplicationResult,
    replicate,
    replicate_until,
    summarize,
)
from .random import generator_for_run, make_generator, spawn_generators
from .trace import EventTraceRecorder, TraceEntry, TraceRecorder

__all__ = [
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "Normal",
    "Uniform",
    "Weibull",
    "make_distribution",
    "BatchMeansResult",
    "batch_means",
    "SimulationResult",
    "Simulator",
    "simulate",
    "MeasureAccumulator",
    "make_accumulators",
    "Estimate",
    "ReplicationResult",
    "replicate",
    "replicate_until",
    "summarize",
    "generator_for_run",
    "make_generator",
    "spawn_generators",
    "EventTraceRecorder",
    "TraceEntry",
    "TraceRecorder",
]

"""Seed management for reproducible simulation experiments.

Independent replications need independent, reproducible random streams.
NumPy's :class:`~numpy.random.SeedSequence` spawning provides exactly that:
one master seed deterministically derives any number of high-quality
independent child streams.
"""

from __future__ import annotations

from typing import List

import numpy as np


def spawn_generators(seed: int, count: int) -> List[np.random.Generator]:
    """Derive *count* independent generators from one master seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(s)) for s in sequence.spawn(count)]


def generator_for_run(seed: int, index: int) -> np.random.Generator:
    """The *index*-th stream of :func:`spawn_generators`, derived directly.

    ``SeedSequence.spawn`` gives child *i* the spawn key ``(i,)``, so any
    single stream can be reconstructed without materialising its siblings.
    This is what lets parallel workers draw exactly the random numbers the
    serial replication loop would have drawn for the same run index.
    """
    child = np.random.SeedSequence(seed, spawn_key=(index,))
    return np.random.Generator(np.random.PCG64(child))


def make_generator(seed: int) -> np.random.Generator:
    """Single generator from a seed (PCG64)."""
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))

"""Seed management for reproducible simulation experiments.

Independent replications need independent, reproducible random streams.
NumPy's :class:`~numpy.random.SeedSequence` spawning provides exactly that:
one master seed deterministically derives any number of high-quality
independent child streams.

Two stream disciplines coexist:

* **per-run streams** (:func:`generator_for_run`) — one stream per
  replication index, consumed by every sampling site of that run.  This
  is the historical discipline of the pure-Python engine.
* **per-event-type streams** (:func:`event_generator`) — one stream per
  ``(seed, run, event type)``, identified by the *name* of the event
  type, not by any enumeration order.  This is the discipline of the
  common-random-numbers layer (docs/SIMULATION.md): two model variants
  that share an event type (e.g. ``C.process_result_packet`` with and
  without the DPM) draw *the same* durations for it, so paired-delta
  measures see correlated noise that cancels.  Deriving the substream
  from the event-type **name** (hashed, not enumerated) is what keeps
  the identity stable: adding an event type to a model cannot reshuffle
  any other event type's stream.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np


def spawn_generators(seed: int, count: int) -> List[np.random.Generator]:
    """Derive *count* independent generators from one master seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(s)) for s in sequence.spawn(count)]


def generator_for_run(seed: int, index: int) -> np.random.Generator:
    """The *index*-th stream of :func:`spawn_generators`, derived directly.

    ``SeedSequence.spawn`` gives child *i* the spawn key ``(i,)``, so any
    single stream can be reconstructed without materialising its siblings.
    This is what lets parallel workers draw exactly the random numbers the
    serial replication loop would have drawn for the same run index.
    """
    child = np.random.SeedSequence(seed, spawn_key=(index,))
    return np.random.Generator(np.random.PCG64(child))


def make_generator(seed: int) -> np.random.Generator:
    """Single generator from a seed (PCG64)."""
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))


#: Spawn-key namespace separating event-type streams from the plain
#: per-run streams of :func:`generator_for_run` (whose keys are ``(i,)``).
_EVENT_STREAM_NAMESPACE = 0xE5E17


def event_stream_key(event_type: str) -> tuple:
    """Stable spawn-key words identifying one event type by *name*.

    The identity is a SHA-256 digest of the UTF-8 name, folded into two
    64-bit words — a pure function of the string, independent of how
    many event types a model has, of the order they are first seen in,
    and of the Python process (``PYTHONHASHSEED`` does not enter).
    Earlier stream derivations enumerated streams by index, so adding an
    event type to a model silently reshuffled every stream after it;
    the regression test pins that this cannot happen again.
    """
    digest = hashlib.sha256(event_type.encode("utf-8")).digest()
    return (
        int.from_bytes(digest[:8], "little"),
        int.from_bytes(digest[8:16], "little"),
    )


def event_generator(
    seed: int, run_index: int, event_type: str
) -> np.random.Generator:
    """The substream of one event type in one replication.

    Derived from ``(seed, run_index, name digest)`` alone: the same
    triple yields the same stream in every process, whichever other
    event types exist, and whatever order they were requested in.  Two
    model variants sharing an event type therefore share its durations
    run by run — the common-random-numbers pairing of
    docs/SIMULATION.md.
    """
    child = np.random.SeedSequence(
        seed,
        spawn_key=(_EVENT_STREAM_NAMESPACE, run_index)
        + event_stream_key(event_type),
    )
    return np.random.Generator(np.random.PCG64(child))


#: Spawn-key namespace for splitting-slot substreams.  Distinct from
#: :data:`_EVENT_STREAM_NAMESPACE`, so a splitting tree's slots can
#: never collide with any replication's event streams, whatever their
#: ``(run, slot)`` coordinates are.
_SPLIT_STREAM_NAMESPACE = 0x5F117


def splitting_event_generator(
    seed: int, run_index: int, slot: int, event_type: str
) -> np.random.Generator:
    """The substream of one event type in one splitting-tree *slot*.

    Rare-event splitting (:mod:`repro.sim.splitting`) runs each
    replication as a tree of weighted trajectories; every trajectory
    occupies an allocator slot, and a clone spawned at a level
    checkpoint takes a slot keyed by its globally unique ident so it
    draws *fresh* randomness from the checkpoint on (a vacated slot key
    is never reissued, so no stream is ever replayed).  Streams are
    derived from ``(seed, run_index, slot key, name digest)`` under a
    dedicated namespace — a pure function of the coordinates, so
    splitting results are deterministic and worker-count invariant
    exactly like plain replications.  The degenerate 1-split
    configuration bypasses this namespace entirely and runs on the
    plain :func:`event_generator` streams of its replication index,
    which makes it bit-identical to naive replication.
    """
    child = np.random.SeedSequence(
        seed,
        spawn_key=(_SPLIT_STREAM_NAMESPACE, run_index, slot)
        + event_stream_key(event_type),
    )
    return np.random.Generator(np.random.PCG64(child))

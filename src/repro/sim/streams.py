"""Per-event-type random streams: the common-random-numbers layer.

The GSMP engines draw two kinds of randomness: event *durations* and
*branch picks* (weighted choice among probabilistic branches).  The
:class:`EventStreamAllocator` gives every ``(run, event type)`` pair its
own substream — derived from ``(seed, run index, event-type name)`` by
:func:`repro.sim.random.event_generator` — plus one branch-pick stream
per run.  Three properties follow:

* **Engine independence.**  Both the pure-Python reference engine
  (``Simulator.run(..., streams=...)``) and the vectorized kernel
  (:mod:`repro.sim.fastengine`) consume durations from the same buffered
  pools, in the same per-stream order, so their trajectories are
  bit-identical by construction (docs/SIMULATION.md).
* **Common random numbers.**  The streams depend only on ``(seed, run,
  event-type name)`` — not on the model.  Two model variants sharing an
  event type (DPM-on vs DPM-off) draw identical durations for it, so
  paired-delta measures subtract correlated noise.
* **Stable identity.**  The name — not an enumeration index — keys the
  stream: adding an event type to a model reshuffles nobody else.

Durations are pre-drawn in blocks (one vectorized ``sample_block`` call
refills a whole buffer row), which is also where the kernel's sampling
speed comes from: per-event consumption is array indexing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributions import Distribution
from .random import event_generator, splitting_event_generator

__all__ = [
    "BRANCH_STREAM",
    "EventStreamAllocator",
    "RunStreams",
    "normalize_stream_index",
]

#: Reserved stream name for branch picks.  Starts with a NUL byte so it
#: can never collide with an action label from a specification.
BRANCH_STREAM = "\x00branch-picks"

#: Durations pre-drawn per (run, event type, distribution) buffer row.
#: Block size never changes the numbers drawn (a stream is the
#: concatenation of its blocks) — only the refill amortisation.
DEFAULT_BLOCK = 256


def normalize_stream_index(index):
    """Canonical form of one allocator row index.

    Plain replications use an ``int`` run index; splitting trajectories
    (:mod:`repro.sim.splitting`) use a ``(run, trajectory)`` pair that
    selects the namespaced substreams of
    :func:`repro.sim.random.splitting_event_generator`.  Both forms are
    pure stream coordinates: the same index draws the same numbers in
    every process and for any batch composition.
    """
    if isinstance(index, tuple):
        run, trajectory = index
        return (int(run), int(trajectory))
    return int(index)


class _Pool:
    """Buffered samples for one (event type, distribution) pair.

    ``buf[row]`` holds the next pre-drawn durations of run *row*;
    ``cur[row]`` is the consumption cursor (``block`` means exhausted —
    rows start exhausted so the first draw triggers a lazily seeded
    refill).
    """

    __slots__ = ("buf", "cur")

    def __init__(self, runs: int, block: int):
        self.buf = np.empty((runs, block), float)
        self.cur = np.full(runs, block, np.int64)


class EventStreamAllocator:
    """Per-(run, event-type) buffered substreams for a set of runs.

    *run_indices* are the absolute replication indices the rows map to:
    row ``i`` of every pool draws from streams derived from
    ``(seed, run_indices[i], name)``.  A parallel worker holding rows
    ``[8..15]`` therefore produces exactly the numbers the serial
    execution would for those runs.
    """

    def __init__(
        self,
        seed: int,
        run_indices: Sequence[int],
        block: int = DEFAULT_BLOCK,
    ):
        self.seed = int(seed)
        self.run_indices = [
            normalize_stream_index(i) for i in run_indices
        ]
        self.block = int(block)
        if self.block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._gens: Dict[Tuple[int, str], np.random.Generator] = {}
        self._pools: Dict[Tuple[str, Distribution], _Pool] = {}
        self._branch: Optional[_Pool] = None
        #: Buffer rows refilled so far (amortised cost diagnostic).
        self.refills = 0

    @property
    def runs(self) -> int:
        """Number of rows (runs) this allocator serves."""
        return len(self.run_indices)

    # -- stream plumbing ---------------------------------------------------

    def _generator(self, row: int, name: str) -> np.random.Generator:
        """The (lazily created) generator behind one (row, name) stream."""
        key = (row, name)
        gen = self._gens.get(key)
        if gen is None:
            index = self.run_indices[row]
            if isinstance(index, tuple):
                run, trajectory = index
                gen = splitting_event_generator(
                    self.seed, run, trajectory, name
                )
            else:
                gen = event_generator(self.seed, index, name)
            self._gens[key] = gen
        return gen

    def _refill(
        self, pool: _Pool, row: int, name: str, distribution: Distribution
    ) -> None:
        pool.buf[row] = distribution.sample_block(
            self._generator(row, name), self.block
        )
        pool.cur[row] = 0
        self.refills += 1

    def _pool(self, name: str, distribution: Distribution) -> _Pool:
        key = (name, distribution)
        pool = self._pools.get(key)
        if pool is None:
            pool = _Pool(self.runs, self.block)
            self._pools[key] = pool
        return pool

    # -- durations ---------------------------------------------------------

    def take(
        self,
        name: str,
        distribution: Distribution,
        rows: np.ndarray,
    ) -> np.ndarray:
        """One duration of event type *name* for each row in *rows*."""
        pool = self._pool(name, distribution)
        cur = pool.cur[rows]
        if (cur >= self.block).any():
            for row in rows[cur >= self.block]:
                self._refill(pool, int(row), name, distribution)
            cur = pool.cur[rows]
        values = pool.buf[rows, cur]
        pool.cur[rows] = cur + 1
        return values

    def take_one(
        self, row: int, name: str, distribution: Distribution
    ) -> float:
        """Scalar-path variant of :meth:`take` (reference engine)."""
        pool = self._pool(name, distribution)
        cur = pool.cur[row]
        if cur >= self.block:
            self._refill(pool, row, name, distribution)
            cur = 0
        value = pool.buf[row, cur]
        pool.cur[row] = cur + 1
        return float(value)

    # -- branch picks ------------------------------------------------------

    def _branch_pool(self) -> _Pool:
        if self._branch is None:
            self._branch = _Pool(self.runs, self.block)
        return self._branch

    def _refill_branch(self, pool: _Pool, row: int) -> None:
        pool.buf[row] = self._generator(row, BRANCH_STREAM).random(
            self.block
        )
        pool.cur[row] = 0
        self.refills += 1

    def branch_uniforms(self, rows: np.ndarray) -> np.ndarray:
        """One uniform in ``[0, 1)`` per row, from the branch streams."""
        pool = self._branch_pool()
        cur = pool.cur[rows]
        if (cur >= self.block).any():
            for row in rows[cur >= self.block]:
                self._refill_branch(pool, int(row))
            cur = pool.cur[rows]
        values = pool.buf[rows, cur]
        pool.cur[rows] = cur + 1
        return values

    def branch_one(self, row: int) -> float:
        """Scalar-path variant of :meth:`branch_uniforms`."""
        pool = self._branch_pool()
        cur = pool.cur[row]
        if cur >= self.block:
            self._refill_branch(pool, row)
            cur = 0
        value = pool.buf[row, cur]
        pool.cur[row] = cur + 1
        return float(value)

    # -- dynamic rows (splitting trees) ------------------------------------

    def add_row(self, index) -> int:
        """Append a row for *index*; returns the new row id.

        Grows every existing pool by one (exhausted) row, so the first
        draw lazily refills from the new index's generators.  Used by
        :mod:`repro.sim.splitting` when a resampling step clones a
        trajectory: the clone gets a fresh ``(run, trajectory)`` stream
        coordinate without touching any other row's cursor.
        """
        row = len(self.run_indices)
        self.run_indices.append(normalize_stream_index(index))
        for pool in self._pools.values():
            self._ensure_row(pool, row)
        if self._branch is not None:
            self._ensure_row(self._branch, row)
        for key in [k for k in self._gens if k[0] == row]:
            del self._gens[key]
        return row

    def rebind_row(self, row: int, index) -> None:
        """Recycle *row* for a new stream *index*.

        Cursors are marked exhausted and the cached generators dropped,
        so the row's next draw starts the new index's streams from their
        beginning — the numbers depend only on the index, never on what
        the row previously served.
        """
        self.run_indices[row] = normalize_stream_index(index)
        for key in [k for k in self._gens if k[0] == row]:
            del self._gens[key]
        for pool in self._pools.values():
            pool.cur[row] = self.block
        if self._branch is not None:
            self._branch.cur[row] = self.block

    def move_row(self, src: int, dst: int) -> None:
        """Relocate *src*'s stream state onto row *dst* (continuity).

        Buffers, cursors, and live generators all move, so the
        trajectory keeps drawing exactly the numbers it would have on
        its old row — rows are storage, stream identity lives in the
        index.  The vacated row is left for :meth:`truncate_rows` or
        :meth:`rebind_row`.
        """
        if src == dst:
            return
        self.run_indices[dst] = self.run_indices[src]
        for pool in self._pools.values():
            pool.buf[dst] = pool.buf[src]
            pool.cur[dst] = pool.cur[src]
        if self._branch is not None:
            self._branch.buf[dst] = self._branch.buf[src]
            self._branch.cur[dst] = self._branch.cur[src]
        for key in [k for k in self._gens if k[0] == src]:
            self._gens[(dst, key[1])] = self._gens.pop(key)

    def truncate_rows(self, rows: int) -> None:
        """Drop every row at index >= *rows* (after compaction).

        Only the logical row count shrinks — pool buffers keep their
        capacity, and a recycled physical row is reset by
        :meth:`add_row`/:meth:`rebind_row` before its next draw.
        """
        if rows >= len(self.run_indices):
            return
        del self.run_indices[rows:]
        for key in [k for k in self._gens if k[0] >= rows]:
            del self._gens[key]

    def _ensure_row(self, pool: _Pool, row: int) -> None:
        """Make *row* usable in *pool*: grow capacity (amortised
        doubling), and mark the row exhausted so its first draw refills
        from the current index's generator."""
        have = pool.buf.shape[0]
        if row >= have:
            capacity = max(row + 1, 2 * have)
            buf = np.empty((capacity, self.block), float)
            buf[:have] = pool.buf
            cur = np.full(capacity, self.block, np.int64)
            cur[:have] = pool.cur
            pool.buf, pool.cur = buf, cur
        pool.cur[row] = self.block

    # -- per-run facade ----------------------------------------------------

    def run_view(self, row: int) -> "RunStreams":
        """Scalar facade binding one row (for the reference engine)."""
        return RunStreams(self, row)


class RunStreams:
    """One run's view of an allocator: the reference engine's sampler.

    Passing this to :meth:`repro.sim.engine.Simulator.run` replaces the
    single shared ``rng`` with the per-event-type stream discipline, so
    the reference trajectory is bit-identical to the vectorized kernel's
    (same allocator parameters, same row).
    """

    __slots__ = ("allocator", "row")

    def __init__(self, allocator: EventStreamAllocator, row: int):
        self.allocator = allocator
        self.row = row

    def duration(self, name: str, distribution: Distribution) -> float:
        """Next duration of event type *name* in this run."""
        return self.allocator.take_one(self.row, name, distribution)

    def branch(self) -> float:
        """Next branch-pick uniform in ``[0, 1)`` for this run."""
        return self.allocator.branch_one(self.row)


def paired_allocators(
    seed: int, run_indices: Sequence[int], block: int = DEFAULT_BLOCK
) -> Tuple[EventStreamAllocator, EventStreamAllocator]:
    """Two allocators drawing *identical* streams (CRN pairing).

    One for the DPM-on model, one for the DPM-off model: separate
    cursor state (the two trajectories consume at their own pace), same
    underlying substreams (shared event types see the same durations).
    """
    return (
        EventStreamAllocator(seed, run_indices, block),
        EventStreamAllocator(seed, run_indices, block),
    )


def independent_allocator(
    seed: int, run_indices: Sequence[int], block: int = DEFAULT_BLOCK
) -> EventStreamAllocator:
    """An allocator decorrelated from ``seed`` (independent baseline).

    Used by benchmarks and tests that compare paired against independent
    runs at the same event budget: the offset keeps every stream disjoint
    from the CRN-paired ones with the original seed.
    """
    return EventStreamAllocator(seed ^ 0x5EEDC0DE, run_indices, block)


__all__.append("paired_allocators")
__all__.append("independent_allocator")

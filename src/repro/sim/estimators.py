"""Measure estimation over simulated trajectories.

The same :class:`~repro.ctmc.measures.Measure` objects used for analytic
CTMC solution are estimated here from a trajectory:

* ``STATE_REWARD`` clauses accumulate *time-weighted* rewards — the
  estimator reports the time average over the measured horizon;
* ``TRANS_REWARD`` clauses accumulate impulses at transition firings — the
  estimator reports the firing-rate-weighted sum per unit of model time.

Both conventions coincide with the steady-state semantics of
:func:`repro.ctmc.measures.evaluate_measure`, which is what makes the
cross-validation of Sect. 5.1 meaningful.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

import numpy as np
from scipy import stats

from ..ctmc.measures import Measure
from ..lts.lts import LTS


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The normal (Wald) interval ``p ± z·sqrt(p(1-p)/n)`` collapses to
    zero width at ``p ∈ {0, 1}`` and goes negative near 0 — exactly the
    regime rare-event probabilities live in.  The Wilson construction
    inverts the score test instead, so the bounds always stay inside
    ``[0, 1]`` and zero observed events still yield a strictly positive
    upper bound (for ``k = 0``: ``z² / (n + z²)``, the rigorous cousin
    of the "rule of three").
    """
    if trials <= 0:
        raise ValueError(f"need at least one trial, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    n = float(trials)
    p = successes / n
    denominator = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denominator
    spread = (
        z
        * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
        / denominator
    )
    return max(0.0, centre - spread), min(1.0, centre + spread)


def log_scale_interval(
    mean: float, std_dev: float, runs: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Delta-method confidence interval for a positive mean, on the log
    scale.

    A Student-t interval on ``log(mean)`` has half-width
    ``t · s / (√n · mean)``; exponentiating gives a *multiplicative*
    interval ``mean · exp(±half)`` whose lower bound can never go
    negative — the correct shape for a near-zero probability, where the
    additive t interval reports impossible values
    (docs/RELIABILITY.md).
    """
    if runs < 2:
        raise ValueError(f"need at least two runs, got {runs}")
    if mean <= 0.0:
        raise ValueError(f"log-scale interval needs mean > 0, got {mean}")
    critical = float(stats.t.ppf(0.5 + confidence / 2.0, runs - 1))
    half = critical * std_dev / (math.sqrt(runs) * mean)
    return mean * math.exp(-half), mean * math.exp(half)


class MeasureAccumulator:
    """Accumulates one measure along a trajectory."""

    def __init__(self, measure: Measure, lts: LTS):
        self.measure = measure
        self._lts = lts
        self._state_reward_cache: Dict[int, float] = {}
        self._trans_reward_cache: Dict[str, float] = {}
        self.time_weighted = 0.0
        self.impulses = 0.0

    def _state_reward(self, state: int) -> float:
        cached = self._state_reward_cache.get(state)
        if cached is None:
            enabled = {t.label for t in self._lts.outgoing(state)}
            cached = self.measure.state_reward(enabled)
            self._state_reward_cache[state] = cached
        return cached

    def _trans_reward(self, label: str) -> float:
        cached = self._trans_reward_cache.get(label)
        if cached is None:
            cached = self.measure.trans_reward(label)
            self._trans_reward_cache[label] = cached
        return cached

    def accumulate_time(self, state: int, elapsed: float) -> None:
        """Record *elapsed* time units spent in *state*."""
        if elapsed > 0 and self.measure.has_state_clauses():
            reward = self._state_reward(state)
            if reward:
                self.time_weighted += reward * elapsed

    def on_fire(self, label: str) -> None:
        """Record the firing of a transition with the given label."""
        if self.measure.has_trans_clauses():
            reward = self._trans_reward(label)
            if reward:
                self.impulses += reward

    def value(self, horizon: float) -> float:
        """The estimate over a measured horizon of the given length."""
        if horizon <= 0:
            return 0.0
        return (self.time_weighted + self.impulses) / horizon

    def reset(self) -> None:
        """Forget accumulated values (used at the end of the warm-up)."""
        self.time_weighted = 0.0
        self.impulses = 0.0


def make_accumulators(
    measures: Iterable[Measure], lts: LTS
) -> List[MeasureAccumulator]:
    """Build one accumulator per measure."""
    return [MeasureAccumulator(m, lts) for m in measures]


class CompiledRewards:
    """Vectorized reward tables for a measure set over one LTS.

    The scalar :class:`MeasureAccumulator` evaluates rewards lazily per
    state/label; the vectorized kernel needs them as dense arrays so a
    whole batch of runs can accumulate in a couple of numpy operations:

    * ``state_reward_matrix(n)[s, j]`` — state reward of measure *j* in
      state *s* (0.0 where the measure has no ``STATE_REWARD`` clauses);
    * ``label_row(label)`` — a stable integer id for a transition label;
      after :meth:`finalize`, ``label_rewards[row, j]`` is the impulse of
      measure *j* when a transition with that label fires.

    Both tables evaluate exactly the expressions the accumulator caches
    (``measure.state_reward`` on the enabled-label set, and
    ``measure.trans_reward`` on the label), so per-step accumulation of
    ``state_reward * elapsed`` and row-wise impulse adds reproduces the
    scalar engine's sums bit for bit — zero rewards contribute ``+0.0``,
    which IEEE addition leaves invisible.
    """

    def __init__(self, measures: Iterable[Measure], lts: LTS):
        self.measures = list(measures)
        self._lts = lts
        self._label_rows: Dict[str, int] = {}
        self._label_order: List[str] = []

    def state_reward_matrix(self, n_states: int) -> np.ndarray:
        """Dense ``(n_states, n_measures)`` state-reward table."""
        matrix = np.zeros((n_states, len(self.measures)), float)
        has_state = [m.has_state_clauses() for m in self.measures]
        if not any(has_state):
            return matrix
        for state in range(n_states):
            enabled = {t.label for t in self._lts.outgoing(state)}
            for j, measure in enumerate(self.measures):
                if has_state[j]:
                    matrix[state, j] = measure.state_reward(enabled)
        return matrix

    def label_row(self, label: str) -> int:
        """Stable row id of *label* in the finalized impulse table."""
        row = self._label_rows.get(label)
        if row is None:
            row = len(self._label_order)
            self._label_rows[label] = row
            self._label_order.append(label)
        return row

    def finalize(self) -> Tuple[List[str], np.ndarray]:
        """``(labels, label_rewards)`` for every label seen so far."""
        labels = list(self._label_order)
        rewards = np.zeros((max(1, len(labels)), len(self.measures)), float)
        for row, label in enumerate(labels):
            for j, measure in enumerate(self.measures):
                if measure.has_trans_clauses():
                    rewards[row, j] = measure.trans_reward(label)
        return labels, rewards

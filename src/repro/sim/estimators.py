"""Measure estimation over simulated trajectories.

The same :class:`~repro.ctmc.measures.Measure` objects used for analytic
CTMC solution are estimated here from a trajectory:

* ``STATE_REWARD`` clauses accumulate *time-weighted* rewards — the
  estimator reports the time average over the measured horizon;
* ``TRANS_REWARD`` clauses accumulate impulses at transition firings — the
  estimator reports the firing-rate-weighted sum per unit of model time.

Both conventions coincide with the steady-state semantics of
:func:`repro.ctmc.measures.evaluate_measure`, which is what makes the
cross-validation of Sect. 5.1 meaningful.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..ctmc.measures import Measure
from ..lts.lts import LTS


class MeasureAccumulator:
    """Accumulates one measure along a trajectory."""

    def __init__(self, measure: Measure, lts: LTS):
        self.measure = measure
        self._lts = lts
        self._state_reward_cache: Dict[int, float] = {}
        self._trans_reward_cache: Dict[str, float] = {}
        self.time_weighted = 0.0
        self.impulses = 0.0

    def _state_reward(self, state: int) -> float:
        cached = self._state_reward_cache.get(state)
        if cached is None:
            enabled = {t.label for t in self._lts.outgoing(state)}
            cached = self.measure.state_reward(enabled)
            self._state_reward_cache[state] = cached
        return cached

    def _trans_reward(self, label: str) -> float:
        cached = self._trans_reward_cache.get(label)
        if cached is None:
            cached = self.measure.trans_reward(label)
            self._trans_reward_cache[label] = cached
        return cached

    def accumulate_time(self, state: int, elapsed: float) -> None:
        """Record *elapsed* time units spent in *state*."""
        if elapsed > 0 and self.measure.has_state_clauses():
            reward = self._state_reward(state)
            if reward:
                self.time_weighted += reward * elapsed

    def on_fire(self, label: str) -> None:
        """Record the firing of a transition with the given label."""
        if self.measure.has_trans_clauses():
            reward = self._trans_reward(label)
            if reward:
                self.impulses += reward

    def value(self, horizon: float) -> float:
        """The estimate over a measured horizon of the given length."""
        if horizon <= 0:
            return 0.0
        return (self.time_weighted + self.impulses) / horizon

    def reset(self) -> None:
        """Forget accumulated values (used at the end of the warm-up)."""
        self.time_weighted = 0.0
        self.impulses = 0.0


def make_accumulators(
    measures: Iterable[Measure], lts: LTS
) -> List[MeasureAccumulator]:
    """Build one accumulator per measure."""
    return [MeasureAccumulator(m, lts) for m in measures]

"""Output analysis: independent replications and confidence intervals.

The paper's simulation experiments average over 30 independent runs and
report 90% confidence intervals (Fig. 5).  :func:`replicate` reproduces
that protocol: independent seeded streams, optional warm-up deletion,
Student-t intervals per measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats

from ..ctmc.measures import Measure
from ..errors import SimulationError
from ..lts.lts import LTS
from .engine import Simulator
from .random import spawn_generators


@dataclass(frozen=True)
class Estimate:
    """Point estimate with a symmetric confidence interval."""

    mean: float
    half_width: float
    std_dev: float
    runs: int
    confidence: float

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def overlaps(self, value: float) -> bool:
        """True when *value* falls inside the confidence interval."""
        return self.low <= value <= self.high

    def overlaps_estimate(self, other: "Estimate") -> bool:
        """True when the two confidence intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%}, n={self.runs})"
        )


@dataclass
class ReplicationResult:
    """Estimates for every measure plus the raw per-run samples."""

    estimates: Dict[str, Estimate]
    samples: Dict[str, List[float]]

    def __getitem__(self, name: str) -> Estimate:
        return self.estimates[name]


def summarize(
    samples: Sequence[float], confidence: float = 0.90
) -> Estimate:
    """Student-t summary of i.i.d. samples."""
    values = np.asarray(list(samples), float)
    runs = len(values)
    if runs == 0:
        raise SimulationError("cannot summarise zero samples")
    mean = float(values.mean())
    if runs == 1:
        return Estimate(mean, math.inf, math.inf, 1, confidence)
    std_dev = float(values.std(ddof=1))
    critical = float(stats.t.ppf(0.5 + confidence / 2.0, runs - 1))
    half_width = critical * std_dev / math.sqrt(runs)
    return Estimate(mean, half_width, std_dev, runs, confidence)


def replicate_until(
    lts: LTS,
    measures: Sequence[Measure],
    run_length: float,
    relative_half_width: float = 0.05,
    min_runs: int = 5,
    max_runs: int = 200,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    clock_semantics: str = "enabling_memory",
) -> ReplicationResult:
    """Sequential replication: run until every measure's confidence
    interval is tight enough (half-width below ``relative_half_width`` of
    the mean, or the measure is ~zero), or ``max_runs`` is exhausted.

    Spends simulation effort where the variance is, instead of fixing the
    replication count up front.
    """
    if not 0 < relative_half_width < 1:
        raise SimulationError(
            f"relative_half_width must be in (0, 1), "
            f"got {relative_half_width}"
        )
    if min_runs < 2 or max_runs < min_runs:
        raise SimulationError(
            f"need 2 <= min_runs <= max_runs, got {min_runs}, {max_runs}"
        )
    simulator = Simulator(lts, measures, clock_semantics)
    streams = spawn_generators(seed, max_runs)
    samples: Dict[str, List[float]] = {m.name: [] for m in measures}

    def precise_enough() -> bool:
        for values in samples.values():
            estimate = summarize(values, confidence)
            scale = abs(estimate.mean)
            if scale < 1e-12:
                continue  # treat ~zero measures as converged
            if estimate.half_width > relative_half_width * scale:
                return False
        return True

    runs_done = 0
    for rng in streams:
        result = simulator.run(run_length, rng, warmup)
        for name, value in result.measures.items():
            samples[name].append(value)
        runs_done += 1
        if runs_done >= min_runs and precise_enough():
            break
    estimates = {
        name: summarize(values, confidence)
        for name, values in samples.items()
    }
    return ReplicationResult(estimates, samples)


def replicate(
    lts: LTS,
    measures: Sequence[Measure],
    run_length: float,
    runs: int = 30,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    clock_semantics: str = "enabling_memory",
    simulator: Optional[Simulator] = None,
) -> ReplicationResult:
    """Independent-replications estimation of all measures.

    A :class:`Simulator` may be passed in to reuse its compiled schedules
    across parameter sweeps that share the state space.
    """
    if runs < 2:
        raise SimulationError("need at least two runs for an interval")
    if simulator is None:
        simulator = Simulator(lts, measures, clock_semantics)
    streams = spawn_generators(seed, runs)
    samples: Dict[str, List[float]] = {m.name: [] for m in measures}
    for rng in streams:
        result = simulator.run(run_length, rng, warmup)
        for name, value in result.measures.items():
            samples[name].append(value)
    estimates = {
        name: summarize(values, confidence)
        for name, values in samples.items()
    }
    return ReplicationResult(estimates, samples)

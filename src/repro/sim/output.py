"""Output analysis: independent replications and confidence intervals.

The paper's simulation experiments average over 30 independent runs and
report 90% confidence intervals (Fig. 5).  :func:`replicate` reproduces
that protocol: independent seeded streams, optional warm-up deletion,
Student-t intervals per measure.

Two engines run the replications (docs/SIMULATION.md):

* ``engine="reference"`` — the pure-Python event loop with its
  historical per-run streams (the seed discipline every committed
  result was produced under);
* ``engine="fast"`` — the vectorized kernel on per-event-type streams.
  Same model semantics, different (equally valid) random streams, so
  estimates agree statistically, not bitwise, with the reference.

:func:`replicate_paired` evaluates two model variants (the paper's
DPM-on vs DPM-off comparisons) with **common random numbers**: shared
per-event-type streams make the two trajectories positively correlated,
so the per-run *differences* — what Sect. 5's tables actually report —
have far smaller variance than independent runs would give.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..ctmc.measures import Measure
from ..errors import SimulationError
from ..lts.lts import LTS
from ..runtime.executor import ParallelExecutor, RetryPolicy
from ..runtime.faults import FaultInjector
from ..runtime.trace import TraceRecorder
from .engine import Simulator
from .estimators import log_scale_interval, wilson_interval
from .fastengine import FastSimulator
from .random import generator_for_run, spawn_generators
from .streams import EventStreamAllocator, independent_allocator

#: Engines selectable wherever replications are run.
ENGINES = ("reference", "fast")


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine name (``None`` means the reference engine)."""
    resolved = engine or "reference"
    if resolved not in ENGINES:
        raise SimulationError(
            f"unknown simulation engine {engine!r} (use one of "
            f"{', '.join(ENGINES)})"
        )
    return resolved


@dataclass(frozen=True)
class Estimate:
    """Point estimate with a symmetric confidence interval."""

    mean: float
    half_width: float
    std_dev: float
    runs: int
    confidence: float

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def overlaps(self, value: float) -> bool:
        """True when *value* falls inside the confidence interval."""
        return self.low <= value <= self.high

    def overlaps_estimate(self, other: "Estimate") -> bool:
        """True when the two confidence intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%}, n={self.runs})"
        )


@dataclass(frozen=True)
class RareEstimate:
    """Point estimate of a *nonnegative* rare quantity with an
    asymmetric confidence interval.

    The symmetric Student-t interval of :class:`Estimate` is the wrong
    shape near zero: its lower bound goes negative (impossible for a
    probability) and, when no run observed the event at all, it
    collapses to zero width — reading "exactly zero, with certainty"
    off a finite sample.  A :class:`RareEstimate` carries explicit
    ``low``/``high`` bounds from a Wilson score interval (binary or
    all-zero samples) or a log-scale delta-method interval (positive
    continuous samples), so ``low >= 0`` always, and zero observed
    events still yield a strictly positive ``high``
    (docs/RELIABILITY.md).
    """

    mean: float
    low: float
    high: float
    std_dev: float
    runs: int
    confidence: float
    #: Interval construction used: ``"wilson"`` or ``"log-t"``.
    method: str

    def overlaps(self, value: float) -> bool:
        """True when *value* falls inside the confidence interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} [{self.low:.3g}, {self.high:.3g}] "
            f"({self.confidence:.0%}, {self.method}, n={self.runs})"
        )


def summarize_rare(
    samples: Sequence[float], confidence: float = 0.95
) -> RareEstimate:
    """Rare-probability summary of i.i.d. nonnegative samples.

    Chooses the interval construction by the shape of the data:

    * **all samples zero** — no run observed the event; each run is
      treated as one Bernoulli trial of "saw it", and the Wilson score
      interval with zero successes gives the honest upper bound
      ``z²/(n+z²)`` instead of a zero-width interval;
    * **binary samples** (every value 0 or 1) — Wilson score interval
      on the success proportion;
    * **positive continuous samples** — Student-t interval on the log
      of the mean (delta method), i.e. a multiplicative interval
      ``mean · exp(±t·s/(√n·mean))`` whose lower bound stays positive.
    """
    values = np.asarray(list(samples), float)
    runs = len(values)
    if runs == 0:
        raise SimulationError("cannot summarise zero samples")
    if (values < 0).any():
        raise SimulationError(
            "rare-probability summaries need nonnegative samples"
        )
    mean = float(values.mean())
    std_dev = float(values.std(ddof=1)) if runs > 1 else math.inf
    binary = bool(np.isin(values, (0.0, 1.0)).all())
    if binary or not values.any():
        successes = int(np.count_nonzero(values))
        low, high = wilson_interval(successes, runs, confidence)
        return RareEstimate(
            mean, low, high, std_dev, runs, confidence, "wilson"
        )
    if runs == 1:
        return RareEstimate(
            mean, 0.0, math.inf, math.inf, 1, confidence, "log-t"
        )
    low, high = log_scale_interval(mean, std_dev, runs, confidence)
    return RareEstimate(
        mean, low, high, std_dev, runs, confidence, "log-t"
    )


@dataclass
class ReplicationResult:
    """Estimates for every measure plus the raw per-run samples."""

    estimates: Dict[str, Estimate]
    samples: Dict[str, List[float]]

    def __getitem__(self, name: str) -> Estimate:
        return self.estimates[name]


def summarize(
    samples: Sequence[float], confidence: float = 0.90
) -> Estimate:
    """Student-t summary of i.i.d. samples."""
    values = np.asarray(list(samples), float)
    runs = len(values)
    if runs == 0:
        raise SimulationError("cannot summarise zero samples")
    mean = float(values.mean())
    if runs == 1:
        return Estimate(mean, math.inf, math.inf, 1, confidence)
    std_dev = float(values.std(ddof=1))
    critical = float(stats.t.ppf(0.5 + confidence / 2.0, runs - 1))
    half_width = critical * std_dev / math.sqrt(runs)
    return Estimate(mean, half_width, std_dev, runs, confidence)


class _RunningStat:
    """Welford running mean/variance — one instance per measure, updated
    in place so the convergence loop never rebuilds estimator state."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def std_dev(self) -> float:
        if self.count < 2:
            return math.inf
        return math.sqrt(self._m2 / (self.count - 1))


#: Scale below which a mean is "about zero" and a *relative* half-width
#: criterion stops being meaningful.
_ZERO_SCALE = 1e-12

# Per-process simulator reuse for parallel replications.  The shared
# payload is pickled into each worker once; every task in the same batch
# must then reuse the compiled simulator instead of rebuilding it per run.
_WORKER_SIM: Optional[Tuple[Any, Simulator]] = None


def _replication_run(shared: Any, run_index: int) -> Dict[str, float]:
    """Run replication *run_index* of the batch described by *shared*.

    Draws exactly the random stream the serial loop would assign to this
    index, so a parallel batch is bit-identical to the serial one — and a
    *retried* run is bit-identical to a first-try run, because the stream
    is derived from ``(seed, run_index)`` alone, never from how many
    attempts it took to get here.
    """
    global _WORKER_SIM
    lts, measures, clock_semantics, run_length, warmup, seed, start = shared
    if _WORKER_SIM is None or _WORKER_SIM[0] is not shared:
        _WORKER_SIM = (shared, Simulator(lts, measures, clock_semantics))
    simulator = _WORKER_SIM[1]
    rng = generator_for_run(seed, run_index)
    result = simulator.run(run_length, rng, warmup, start_state=start)
    return result.measures


def _seed_worker_sim(shared: Any, simulator: Simulator) -> None:
    """Pre-populate this process's simulator memo (serial path reuse)."""
    global _WORKER_SIM
    _WORKER_SIM = (shared, simulator)


# Per-process compiled-model reuse for the vectorized engine: one
# CompiledModel (or pair, for CRN runs) per shared payload.
_WORKER_FAST: Optional[Tuple[Any, Any]] = None


def _run_chunks(runs: int, workers: int) -> List[Tuple[int, ...]]:
    """Contiguous run-index chunks, one per worker (last may be short).

    The vectorized kernel amortises per-step overhead across its batch,
    so runs are split into a few large chunks rather than scattered —
    and because every stream is a pure function of ``(seed, run index,
    event type)``, the chunking never changes any run's numbers.
    """
    if workers <= 1 or runs <= 1:
        return [tuple(range(runs))]
    size = math.ceil(runs / min(workers, runs))
    return [
        tuple(range(lo, min(lo + size, runs)))
        for lo in range(0, runs, size)
    ]


def _fast_batch(shared: Any, chunk: Tuple[int, ...]) -> List[Dict[str, float]]:
    """Run one chunk of replications on the vectorized engine.

    Stream identity depends only on ``(seed, run index, event type)``,
    so any split of the run indices into chunks — serial, or one chunk
    per worker — produces bit-identical per-run results.
    """
    global _WORKER_FAST
    lts, measures, clock_semantics, run_length, warmup, seed = shared
    if _WORKER_FAST is None or _WORKER_FAST[0] is not shared:
        _WORKER_FAST = (
            shared,
            FastSimulator(lts, measures, clock_semantics),
        )
    simulator = _WORKER_FAST[1]
    results = simulator.run_many(
        run_length,
        seed=seed,
        warmup=warmup,
        run_indices=list(chunk),
    )
    return [result.measures for result in results]


def _paired_batch(
    shared: Any, chunk: Tuple[int, ...]
) -> List[Tuple[Dict[str, float], Dict[str, float]]]:
    """Run one chunk of paired replications (two model variants).

    With ``crn`` the two variants draw from allocators with *identical*
    stream parameters, so shared event types see the same durations run
    by run; otherwise the second variant gets decorrelated streams (the
    independent baseline the benchmarks compare against).
    """
    global _WORKER_FAST
    (
        lts_first, lts_second, measures, clock_semantics,
        run_length, warmup, seed, crn, engine,
    ) = shared
    if _WORKER_FAST is None or _WORKER_FAST[0] is not shared:
        if engine == "fast":
            sims = (
                FastSimulator(lts_first, measures, clock_semantics),
                FastSimulator(lts_second, measures, clock_semantics),
            )
        else:
            sims = (
                Simulator(lts_first, measures, clock_semantics),
                Simulator(lts_second, measures, clock_semantics),
            )
        _WORKER_FAST = (shared, sims)
    sim_first, sim_second = _WORKER_FAST[1]
    indices = list(chunk)
    alloc_first = EventStreamAllocator(seed, indices)
    alloc_second = (
        EventStreamAllocator(seed, indices)
        if crn
        else independent_allocator(seed, indices)
    )
    if engine == "fast":
        first = sim_first.run_many(
            run_length,
            warmup=warmup,
            run_indices=indices,
            allocator=alloc_first,
        )
        second = sim_second.run_many(
            run_length,
            warmup=warmup,
            run_indices=indices,
            allocator=alloc_second,
        )
    else:
        first = [
            sim_first.run(
                run_length, None, warmup,
                streams=alloc_first.run_view(row),
            )
            for row in range(len(indices))
        ]
        second = [
            sim_second.run(
                run_length, None, warmup,
                streams=alloc_second.run_view(row),
            )
            for row in range(len(indices))
        ]
    return [
        (a.measures, b.measures) for a, b in zip(first, second)
    ]


def replicate_until(
    lts: LTS,
    measures: Sequence[Measure],
    run_length: float,
    relative_half_width: float = 0.05,
    absolute_half_width: Optional[float] = None,
    min_runs: int = 5,
    max_runs: int = 200,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    clock_semantics: str = "enabling_memory",
    workers: int = 1,
    reuse_warmup_state: bool = True,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[TraceRecorder] = None,
) -> ReplicationResult:
    """Sequential replication: run until every measure's confidence
    interval is tight enough (half-width below ``relative_half_width`` of
    the mean), or ``max_runs`` is exhausted.

    Spends simulation effort where the variance is, instead of fixing the
    replication count up front.  With *retry*/*faults* set, a run that
    fails is re-executed (same stream index, hence the same value) before
    anything is recorded: the Welford accumulators and the convergence
    check only ever see each replication index **once**, so a retried run
    can neither double-count nor shift the stopping point — the estimates
    are identical to a fault-free execution.  Three more behaviours worth
    knowing:

    * A measure that is *exactly* constant across runs (zero sample
      standard deviation — e.g. a probability that is identically 0)
      counts as converged.  A measure that is merely *near* zero but
      noisy does **not**: its relative criterion is undefined, so it
      keeps the loop running rather than silently masking
      non-convergence.  That policy makes a *relative* target
      unreachable for a measure whose true value is ~0 (a rare-event
      probability): the loop runs to ``max_runs`` every time.
      ``absolute_half_width`` is the escape hatch — a measure whose
      interval half-width is already below that absolute floor counts
      as converged regardless of how small its mean is, which is the
      right stopping rule for rare probabilities ("know it to within
      1e-4" rather than "know it to within 5% of itself").
    * With ``reuse_warmup_state`` (and ``warmup > 0``) the warm-up
      transient is simulated once and every replication starts from the
      resulting state instead of re-paying the warm-up per run.  The
      warm-up trajectory uses stream index ``max_runs`` so it never
      collides with a replication stream.
    * ``workers > 1`` runs replications in worker-sized batches; the
      sequential stopping rule is applied in run order and any runs past
      the stopping point are discarded, so the estimates are identical
      to a serial execution that stopped at the same run.
    """
    if not 0 < relative_half_width < 1:
        raise SimulationError(
            f"relative_half_width must be in (0, 1), "
            f"got {relative_half_width}"
        )
    if absolute_half_width is not None and absolute_half_width <= 0:
        raise SimulationError(
            f"absolute_half_width must be positive, "
            f"got {absolute_half_width}"
        )
    if min_runs < 2 or max_runs < min_runs:
        raise SimulationError(
            f"need 2 <= min_runs <= max_runs, got {min_runs}, {max_runs}"
        )
    simulator = Simulator(lts, measures, clock_semantics)
    start_state: Optional[int] = None
    run_warmup = warmup
    if reuse_warmup_state and warmup > 0:
        warm = simulator.run(warmup, generator_for_run(seed, max_runs), 0.0)
        start_state = warm.final_state
        run_warmup = 0.0

    names = [m.name for m in measures]
    samples: Dict[str, List[float]] = {name: [] for name in names}
    running = {name: _RunningStat() for name in names}
    criticals: Dict[int, float] = {}

    def record(measured: Dict[str, float]) -> None:
        for name in names:
            value = measured[name]
            samples[name].append(value)
            running[name].add(value)

    def precise_enough() -> bool:
        for stat in running.values():
            if stat.std_dev == 0.0:
                continue  # exactly constant (e.g. identically zero)
            critical = criticals.get(stat.count)
            if critical is None:
                critical = float(
                    stats.t.ppf(0.5 + confidence / 2.0, stat.count - 1)
                )
                criticals[stat.count] = critical
            half_width = critical * stat.std_dev / math.sqrt(stat.count)
            if (
                absolute_half_width is not None
                and half_width <= absolute_half_width
            ):
                continue  # absolute floor reached: converged at any scale
            scale = abs(stat.mean)
            if scale < _ZERO_SCALE:
                return False  # noisy around zero: never call it converged
            if half_width > relative_half_width * scale:
                return False
        return True

    executor = ParallelExecutor(workers)
    shared = (
        lts, measures, clock_semantics, run_length, run_warmup, seed,
        start_state,
    )
    resilience = {}
    if retry is not None or faults is not None or tracer is not None:
        resilience = {
            "retry": retry, "faults": faults, "tracer": tracer,
            "phase": "replicate",
        }
        # The resilient serial path routes through _replication_run in
        # this very process: hand it the already-compiled simulator.
        _seed_worker_sim(shared, simulator)
    runs_done = 0
    stop = False
    while runs_done < max_runs and not stop:
        if executor.is_serial and not resilience:
            batch = [
                simulator.run(
                    run_length,
                    generator_for_run(seed, runs_done),
                    run_warmup,
                    start_state=start_state,
                ).measures
            ]
        else:
            span = (
                1
                if executor.is_serial
                else min(executor.workers, max_runs - runs_done)
            )
            batch = executor.map(
                _replication_run,
                range(runs_done, runs_done + span),
                shared=shared,
                chunksize=1,
                **resilience,
            )
        for measured in batch:
            # A run reaches this point exactly once: failed attempts are
            # retried *before* the result is surfaced, so the Welford
            # accumulators never see a replayed replication twice.
            record(measured)
            runs_done += 1
            if runs_done >= min_runs and precise_enough():
                stop = True
                break  # runs past the stopping point are discarded
    estimates = {
        name: summarize(values, confidence)
        for name, values in samples.items()
    }
    return ReplicationResult(estimates, samples)


def replicate(
    lts: LTS,
    measures: Sequence[Measure],
    run_length: float,
    runs: int = 30,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    clock_semantics: str = "enabling_memory",
    simulator: Optional[Simulator] = None,
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[TraceRecorder] = None,
    engine: Optional[str] = None,
) -> ReplicationResult:
    """Independent-replications estimation of all measures.

    A :class:`Simulator` may be passed in to reuse its compiled schedules
    across parameter sweeps that share the state space (serial path only;
    worker processes compile their own copy once per batch).

    ``workers > 1`` distributes runs over a process pool.  Each run draws
    its stream from the master seed by index, so the estimates are
    bit-identical to the serial execution.  *retry*/*faults*/*tracer*
    engage the fault-tolerant executor path: failed runs are re-executed
    on the same stream index (same value), so faults and retries cannot
    change the estimates.

    ``engine="fast"`` runs the replications on the vectorized kernel
    with per-event-type streams — statistically equivalent to, but on a
    different stream discipline than, the reference engine (so not
    bitwise comparable across engines; each engine is bit-reproducible
    against itself for any worker count).
    """
    if runs < 2:
        raise SimulationError("need at least two runs for an interval")
    samples: Dict[str, List[float]] = {m.name: [] for m in measures}
    executor = ParallelExecutor(workers)
    resilience = {}
    if retry is not None or faults is not None or tracer is not None:
        resilience = {
            "retry": retry, "faults": faults, "tracer": tracer,
            "phase": "replicate",
        }
    if resolve_engine(engine) == "fast":
        shared = (lts, measures, clock_semantics, run_length, warmup, seed)
        chunks = _run_chunks(runs, executor.workers)
        for batch in executor.map(
            _fast_batch,
            chunks,
            shared=shared,
            chunksize=1,
            **resilience,
        ):
            for measured in batch:
                for name, value in measured.items():
                    samples[name].append(value)
        estimates = {
            name: summarize(values, confidence)
            for name, values in samples.items()
        }
        return ReplicationResult(estimates, samples)
    if executor.is_serial and not resilience:
        if simulator is None:
            simulator = Simulator(lts, measures, clock_semantics)
        for rng in spawn_generators(seed, runs):
            result = simulator.run(run_length, rng, warmup)
            for name, value in result.measures.items():
                samples[name].append(value)
    else:
        shared = (
            lts, measures, clock_semantics, run_length, warmup, seed, None,
        )
        if executor.is_serial and simulator is not None:
            _seed_worker_sim(shared, simulator)
        for measured in executor.map(
            _replication_run,
            range(runs),
            shared=shared,
            chunksize=1,
            **resilience,
        ):
            for name, value in measured.items():
                samples[name].append(value)
    estimates = {
        name: summarize(values, confidence)
        for name, values in samples.items()
    }
    return ReplicationResult(estimates, samples)


def summarize_paired(
    first: Sequence[float],
    second: Sequence[float],
    confidence: float = 0.90,
) -> Estimate:
    """Student-t summary of the mean *difference* ``first - second``.

    The paired-t construction: the interval is computed on the per-run
    deltas, so whatever noise the two samples share (common random
    numbers) cancels before the variance is estimated.  With independent
    samples this degrades gracefully to an ordinary difference interval.
    """
    if len(first) != len(second):
        raise SimulationError(
            f"paired samples must align run by run "
            f"({len(first)} vs {len(second)})"
        )
    deltas = [a - b for a, b in zip(first, second)]
    return summarize(deltas, confidence)


@dataclass
class PairedReplicationResult:
    """Two variants' estimates plus paired-delta intervals.

    ``delta`` summarises ``first - second`` run by run — with common
    random numbers these intervals are the headline: correlated noise
    cancels in the differences, so they are far narrower than what the
    two marginal intervals would suggest.
    """

    first: ReplicationResult
    second: ReplicationResult
    delta: Dict[str, Estimate]
    delta_samples: Dict[str, List[float]]
    #: Whether the variants shared common random numbers.
    crn: bool

    def __getitem__(self, name: str) -> Estimate:
        return self.delta[name]


def replicate_paired(
    lts_first: LTS,
    lts_second: LTS,
    measures: Sequence[Measure],
    run_length: float,
    runs: int = 30,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    clock_semantics: str = "enabling_memory",
    workers: int = 1,
    engine: Optional[str] = "fast",
    crn: bool = True,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[TraceRecorder] = None,
) -> PairedReplicationResult:
    """Paired replications of two model variants (CRN by default).

    Evaluates the same measures on two models — the paper's DPM-on vs
    DPM-off comparisons — with run *i* of one variant paired against run
    *i* of the other.  With ``crn`` (the default) both variants draw
    from identical per-event-type streams, so event types the models
    share (the workload, the service times) see the same durations run
    by run and the per-run deltas cancel their common noise; the
    benchmarks measure the resulting interval shrinkage.  ``crn=False``
    gives the independent baseline at the same event budget.

    Pairing happens inside each worker chunk, and streams are pure
    functions of ``(seed, run index, event type)``, so results are
    bit-identical for any worker count.
    """
    if runs < 2:
        raise SimulationError("need at least two runs for an interval")
    resolved_engine = resolve_engine(engine)
    executor = ParallelExecutor(workers)
    resilience = {}
    if retry is not None or faults is not None or tracer is not None:
        resilience = {
            "retry": retry, "faults": faults, "tracer": tracer,
            "phase": "replicate-paired",
        }
    shared = (
        lts_first, lts_second, measures, clock_semantics,
        run_length, warmup, seed, crn, resolved_engine,
    )
    names = [m.name for m in measures]
    first_samples: Dict[str, List[float]] = {name: [] for name in names}
    second_samples: Dict[str, List[float]] = {name: [] for name in names}
    chunks = _run_chunks(runs, executor.workers)
    for batch in executor.map(
        _paired_batch,
        chunks,
        shared=shared,
        chunksize=1,
        **resilience,
    ):
        for measured_first, measured_second in batch:
            for name in names:
                first_samples[name].append(measured_first[name])
                second_samples[name].append(measured_second[name])
    first = ReplicationResult(
        {
            name: summarize(values, confidence)
            for name, values in first_samples.items()
        },
        first_samples,
    )
    second = ReplicationResult(
        {
            name: summarize(values, confidence)
            for name, values in second_samples.items()
        },
        second_samples,
    )
    delta_samples = {
        name: [
            a - b
            for a, b in zip(first_samples[name], second_samples[name])
        ]
        for name in names
    }
    delta = {
        name: summarize(values, confidence)
        for name, values in delta_samples.items()
    }
    return PairedReplicationResult(
        first, second, delta, delta_samples, crn
    )

"""Batch-means output analysis: one long run instead of replications.

The replication protocol of :mod:`repro.sim.output` pays the warm-up once
per run; the batch-means method pays it once in total, splitting a single
long trajectory into contiguous batches whose means are treated as
(approximately independent) samples.  For well-mixing models both agree —
asserted in tests — and batch means is preferable when the warm-up is
expensive.

The lag-1 autocorrelation of the batch means is reported so callers can
detect undersized batches (a standard diagnostic: values near zero are
good, large positive values mean the batches are still correlated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..ctmc.measures import Measure
from ..errors import SimulationError
from ..lts.lts import LTS
from ..obs import metrics as obs_metrics
from .engine import Simulator
from .output import Estimate, summarize, summarize_paired
from .random import make_generator


@dataclass
class BatchMeansResult:
    """Per-measure estimates plus batch diagnostics."""

    estimates: Dict[str, Estimate]
    batch_means: Dict[str, List[float]]
    lag1_autocorrelation: Dict[str, float]
    #: Per-measure running confidence half-widths: entry ``k`` is the
    #: half-width over the first ``k + 2`` batches, so a flattening tail
    #: shows the estimator has converged and a still-shrinking one says
    #: more batches would pay (docs/OBSERVABILITY.md).
    convergence: Dict[str, List[float]] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Estimate:
        return self.estimates[name]


def _lag1_autocorrelation(values: Sequence[float]) -> float:
    array = np.asarray(values, float)
    if len(array) < 3:
        return 0.0
    centred = array - array.mean()
    denominator = float(centred @ centred)
    if denominator == 0.0:
        return 0.0
    return float(centred[:-1] @ centred[1:]) / denominator


def batch_means(
    lts: LTS,
    measures: Sequence[Measure],
    batch_length: float,
    batches: int = 20,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    clock_semantics: str = "enabling_memory",
) -> BatchMeansResult:
    """Single-run batch-means estimation of all measures.

    The trajectory lasts ``warmup + batches * batch_length`` model time
    units; statistics are collected per batch after the warm-up.
    """
    if batches < 2:
        raise SimulationError("need at least two batches for an interval")
    if batch_length <= 0:
        raise SimulationError(
            f"batch_length must be positive, got {batch_length}"
        )
    simulator = Simulator(lts, measures, clock_semantics)
    rng = make_generator(seed)

    # Run batch by batch, carrying both the state and the residual event
    # clocks across batch boundaries: the concatenated batches form ONE
    # trajectory of the model.  Discarding the clocks (as earlier
    # versions did) silently turned every boundary into a regeneration
    # point — exact for exponential models, but systematically biased
    # for deterministic/Gaussian timers longer than a batch, which then
    # never fired at all.
    samples: Dict[str, List[float]] = {m.name: [] for m in measures}
    state = None
    clocks: Dict[str, float] = {}
    first = True
    for _ in range(batches):
        result = simulator.run(
            batch_length,
            rng,
            warmup=warmup if first else 0.0,
            start_state=state,
            start_clocks=clocks,
        )
        first = False
        state = result.final_state
        clocks = result.final_clocks
        for name, value in result.measures.items():
            samples[name].append(value)
    estimates = {
        name: summarize(values, confidence)
        for name, values in samples.items()
    }
    autocorrelation = {
        name: _lag1_autocorrelation(values)
        for name, values in samples.items()
    }
    convergence = {
        name: [
            summarize(values[:count], confidence).half_width
            for count in range(2, len(values) + 1)
        ]
        for name, values in samples.items()
    }
    registry = obs_metrics.get_registry()
    if registry.enabled:
        obs_metrics.SIM_BATCHES.on(registry).inc(batches)
        lag_gauge = obs_metrics.SIM_BATCH_LAG1.on(registry)
        for name, value in autocorrelation.items():
            lag_gauge.labels(measure=name).set(value)
    return BatchMeansResult(
        estimates, samples, autocorrelation, convergence
    )


def paired_batch_delta(
    first: BatchMeansResult,
    second: BatchMeansResult,
    confidence: float = 0.90,
) -> Dict[str, Estimate]:
    """Paired-delta intervals from two batch-means analyses.

    Batch ``k`` of *first* is paired with batch ``k`` of *second*, and
    the Student-t interval is computed on the per-batch differences —
    the batch-means counterpart of the paired replication protocol in
    :func:`repro.sim.output.summarize_paired`.  Meaningful when the two
    trajectories were driven by common random numbers (shared event
    streams, docs/SIMULATION.md); with independent trajectories it
    degrades to an ordinary difference interval.  Both analyses must
    cover the same measures with the same batch count.
    """
    if set(first.batch_means) != set(second.batch_means):
        raise SimulationError(
            "paired batch-means analyses must cover the same measures"
        )
    return {
        name: summarize_paired(
            first.batch_means[name], second.batch_means[name], confidence
        )
        for name in first.batch_means
    }

"""Event-trace recording for debugging and for the example scripts.

An :class:`EventTraceRecorder` runs a
:class:`~repro.sim.engine.Simulator` with an observer that keeps the
first ``capacity`` events as ``(time, label, state_info)`` triples —
enough to eyeball a trajectory without drowning in output.

Naming note (docs/OBSERVABILITY.md): this records *simulation event
trajectories*; the runtime's *work-span* recorder is
:class:`repro.runtime.trace.TraceRecorder`.  The historical name
``TraceRecorder`` is kept here as a deprecated alias.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..ctmc.measures import Measure
from ..errors import SimulationError
from ..lts.lts import LTS
from .engine import SimulationResult, Simulator


@dataclass
class TraceEntry:
    """One recorded event firing."""

    time: float
    label: str
    state_info: str

    def __str__(self) -> str:
        return f"t={self.time:10.4f}  {self.label:<50} -> {self.state_info}"


class EventTraceRecorder:
    """Simulate while recording a bounded prefix of the event trace.

    Distinct from the runtime work-span recorder
    :class:`repro.runtime.trace.TraceRecorder` — see
    docs/OBSERVABILITY.md for how the two fit together.
    """

    def __init__(
        self,
        lts: LTS,
        measures: Sequence[Measure] = (),
        capacity: int = 200,
    ):
        if capacity <= 0:
            raise SimulationError("trace capacity must be positive")
        self.lts = lts
        self.capacity = capacity
        self.entries: List[TraceEntry] = []
        self._simulator = Simulator(lts, measures)

    def run(
        self,
        run_length: float,
        rng: np.random.Generator,
        warmup: float = 0.0,
    ) -> SimulationResult:
        """Run a trajectory, recording up to ``capacity`` events."""
        self.entries = []

        def observer(time: float, label: str, target: int) -> None:
            if len(self.entries) < self.capacity:
                self.entries.append(
                    TraceEntry(time, label, self.lts.state_info(target))
                )

        return self._simulator.run(
            run_length, rng, warmup, observer=observer
        )

    def format(self) -> str:
        """Pretty-print the recorded prefix."""
        lines = [str(entry) for entry in self.entries]
        if len(self.entries) == self.capacity:
            lines.append(f"... (trace capped at {self.capacity} events)")
        return "\n".join(lines)


class TraceRecorder(EventTraceRecorder):
    """Deprecated alias of :class:`EventTraceRecorder`.

    The old name collided with the runtime's work-span recorder
    (:class:`repro.runtime.trace.TraceRecorder`); it stays importable
    for one deprecation cycle.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "repro.sim.trace.TraceRecorder was renamed to "
            "EventTraceRecorder (the old name collides with "
            "repro.runtime.trace.TraceRecorder)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)

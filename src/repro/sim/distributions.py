"""Re-export of :mod:`repro.distributions` under the simulation package.

The canonical implementation lives at the package top level so that the
specification language (:mod:`repro.aemilia.rates`) can use distributions
without importing the simulation engine (avoiding an import cycle).
"""

from ..distributions import (  # noqa: F401
    DISTRIBUTION_KEYWORDS,
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Normal,
    Pareto,
    Uniform,
    Weibull,
    make_distribution,
    parse_distribution_spec,
)

__all__ = [
    "DISTRIBUTION_KEYWORDS",
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "Normal",
    "Pareto",
    "Uniform",
    "Weibull",
    "make_distribution",
    "parse_distribution_spec",
]

"""Rare-event multilevel importance splitting (RESTART / fixed effort).

The paper's QoS measures turn into *rare events* at production-grade
DPM settings: a frame-loss or timeout probability around 1e-6 means a
naive replication protocol observes the event a handful of times per
million simulated time units — the estimate is noise at any engine
speed (docs/SIMULATION.md).  This module layers RESTART-style
multilevel splitting over both engines:

* An **importance function** maps every state to an integer level
  ``0..levels``; by default it is derived from the rare measure's
  reward support — the states where the measure collects reward are the
  top level, and graph distance over the LTS (a reverse BFS) places the
  intermediate levels — and it is user-overridable by any
  ``state -> level`` callable.
* Each replication grows a **trajectory tree**.  Trajectories run in
  segments; at every segment boundary they are checkpointed (state +
  residual clocks via ``SimulationResult.final_clocks``) and resampled
  with *fixed effort per level*: a level bin above the base holding
  fewer than ``splits`` trajectories splits its heaviest member (the
  clone inherits the checkpoint minus the *memoryless* exponential
  residuals — those are redrawn so siblings decorrelate immediately —
  and occupies a fresh allocator slot whose substreams are keyed by the
  clone's globally unique ident under the namespaced
  :func:`repro.sim.random.splitting_event_generator`), and any bin
  holding more than ``splits`` merges its two lightest members with a
  weight-proportional coin.  Splitting halves weights, merging sums
  them, so total weight is conserved at exactly 1 per tree and every
  weighted estimate stays **unbiased** — merging is the
  weight-conserving form of the Russian-roulette down-crossing control
  of classic RESTART.
* The estimator: each tree reports the weighted time average of every
  measure (one i.i.d. sample per replication), and the per-level
  boundary occupancies, whose telescoping ratios are the per-level
  conditional probabilities ``P(level >= l | level >= l-1)`` — their
  product is the rare-set probability, with variance propagated on the
  log scale by :func:`repro.sim.output.summarize_rare`.

Determinism: every stream — event durations of any slot, and the
per-tree resample coin — is a pure function of ``(seed, run index,
slot key, name)``; slot keys are the spawning clone's ident, which is
never reused within a tree, and each tree is one executor task, so
results are bit-identical for any worker count and across checkpoint
resume.

Degenerate configuration: with ``splits=1`` no clone and no merge can
ever happen, so the layer collapses to a *single* engine call per
replication on the per-event-type stream discipline — bit-identical to
``replicate(engine="fast")`` from either engine (the differential test
pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..aemilia.rates import ExpRate, GeneralRate
from ..ctmc.measures import Measure
from ..distributions import Exponential
from ..errors import SimulationError
from ..lts.lts import LTS
from ..obs import metrics as obs_metrics
from ..obs import tracing
from ..runtime.executor import ParallelExecutor, RetryPolicy
from ..runtime.faults import FaultInjector
from ..runtime.trace import TraceRecorder
from .engine import Simulator
from .fastengine import FastSimulator
from .output import (
    Estimate,
    RareEstimate,
    resolve_engine,
    summarize,
    summarize_rare,
)
from .random import splitting_event_generator
from .streams import EventStreamAllocator

__all__ = [
    "ImportanceFunction",
    "RESAMPLE_STREAM",
    "SplittingResult",
    "reward_importance",
    "split_replicate",
    "tabulate_importance",
]

#: Reserved stream name for the per-tree resample coin (split/merge
#: decisions).  NUL-prefixed like the branch-pick stream, so it can
#: never collide with an action label from a specification.
RESAMPLE_STREAM = "\x00resample-picks"


@dataclass(frozen=True)
class ImportanceFunction:
    """A tabulated ``state -> level`` map over one LTS.

    ``levels`` is the index of the top (rare) level; every state maps
    into ``0..levels``.  The table is materialised up front so workers
    can share it by pickling a tuple instead of a closure.
    """

    levels: int
    table: Tuple[int, ...]

    def level(self, state: int) -> int:
        """The importance level of *state*."""
        return self.table[state]


def tabulate_importance(
    lts: LTS, fn: Callable[[int], int], levels: int
) -> ImportanceFunction:
    """Materialise a user importance callable into a table."""
    if levels < 1:
        raise SimulationError(f"need levels >= 1, got {levels}")
    table = []
    for state in lts.states():
        level = int(fn(state))
        if not 0 <= level <= levels:
            raise SimulationError(
                f"importance function returned level {level} for state "
                f"{state}; levels must lie in [0, {levels}]"
            )
        table.append(level)
    return ImportanceFunction(levels, tuple(table))


def reward_importance(
    lts: LTS, measure: Measure, levels: int
) -> ImportanceFunction:
    """Importance from a measure's reward support via LTS distance.

    The *target set* is every state where the measure collects reward —
    states whose enabled-label set earns a ``STATE_REWARD``, and source
    states of transitions earning a ``TRANS_REWARD`` impulse.  A
    reverse BFS over the transition graph gives each state its distance
    (in transitions) to the nearest target; distances are scaled
    linearly onto ``0..levels`` with the targets at the top level and
    the farthest (or unreachable-from) states at level 0.  This is the
    default level placement; hand-tuned importance callables are passed
    through :func:`tabulate_importance` instead.
    """
    if levels < 1:
        raise SimulationError(f"need levels >= 1, got {levels}")
    n = lts.num_states
    targets = set()
    for state in lts.states():
        outgoing = lts.outgoing(state)
        if measure.has_state_clauses():
            enabled = {t.label for t in outgoing}
            if measure.state_reward(enabled) != 0.0:
                targets.add(state)
        if measure.has_trans_clauses():
            if any(
                measure.trans_reward(t.label) != 0.0 for t in outgoing
            ):
                targets.add(state)
    if not targets:
        raise SimulationError(
            f"measure {measure.name!r} has no reward support on this "
            f"model: cannot derive an importance function from it"
        )
    reverse: List[List[int]] = [[] for _ in range(n)]
    for state in lts.states():
        for transition in lts.outgoing(state):
            reverse[transition.target].append(state)
    distance = [-1] * n
    frontier = sorted(targets)
    for state in frontier:
        distance[state] = 0
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for state in frontier:
            for predecessor in reverse[state]:
                if distance[predecessor] < 0:
                    distance[predecessor] = depth
                    next_frontier.append(predecessor)
        frontier = sorted(set(next_frontier))
    horizon = max(d for d in distance if d >= 0)
    table = []
    for state in lts.states():
        d = distance[state]
        if d < 0:
            table.append(0)  # cannot reach the rare set at all
        elif horizon == 0:
            table.append(levels)
        else:
            table.append((levels * (horizon - d)) // horizon)
    return ImportanceFunction(levels, tuple(table))


@dataclass
class SplittingResult:
    """Splitting estimates for every measure plus tree diagnostics."""

    #: Student-t summaries of the per-tree weighted averages.
    estimates: Dict[str, Estimate]
    #: Rare-probability summaries (Wilson / log-scale intervals) of the
    #: same samples, for the measures where they apply (nonnegative).
    rare: Dict[str, RareEstimate]
    #: Raw per-tree samples, one per replication index.
    samples: Dict[str, List[float]]
    #: Per-tree boundary occupancy samples: ``occupancy[l]`` holds one
    #: value per run — the weighted fraction of segment boundaries the
    #: tree spent at importance level >= ``l``  (``occupancy[0]`` is the
    #: conserved total weight, identically 1).
    occupancy: List[List[float]]
    levels: int
    splits: int
    segments: int
    confidence: float
    #: Events fired across all trees (the splitting run's event budget).
    events: int
    clones: int
    merges: int
    peak_trajectories: int

    def __getitem__(self, name: str) -> Estimate:
        return self.estimates[name]

    @property
    def level_conditionals(self) -> List[float]:
        """``P(level >= l | level >= l-1)`` for ``l = 1..levels``.

        Telescoping ratios of the mean boundary occupancies: their
        product is exactly the top-level occupancy, so the rare-set
        probability decomposes into per-level conditional probabilities
        — the classic multilevel-splitting estimator form.
        """
        means = [
            float(np.mean(samples)) for samples in self.occupancy
        ]
        conditionals = []
        for level in range(1, self.levels + 1):
            below = means[level - 1]
            conditionals.append(
                means[level] / below if below > 0 else 0.0
            )
        return conditionals

    def rare_probability(
        self, confidence: Optional[float] = None
    ) -> RareEstimate:
        """The rare-set (top level) probability with a log-scale CI.

        The point estimate is the product of the per-level conditional
        probabilities (equivalently the mean top-level occupancy); the
        interval comes from :func:`repro.sim.output.summarize_rare` on
        the per-tree samples, so the variance of the product propagates
        on the log scale instead of the symmetric t construction that
        goes negative near zero.
        """
        return summarize_rare(
            self.occupancy[self.levels],
            self.confidence if confidence is None else confidence,
        )


class _Trajectory:
    """One live trajectory of a splitting tree.

    ``row`` is the trajectory's row in the tree's shared
    :class:`EventStreamAllocator` — the per-row cursors give every
    trajectory continuous substreams across segments, while the batched
    kernel advances all of them in one ``run_many`` call per segment.
    """

    __slots__ = ("ident", "weight", "state", "clocks", "row")

    def __init__(self, ident, weight, state, clocks, row):
        self.ident = ident
        self.weight = weight
        self.state = state
        self.clocks = clocks
        self.row = row


def _memoryless_events(lts: LTS) -> frozenset:
    """Event names whose durations are exponential (memoryless).

    A clone may *redraw* these clocks instead of inheriting the
    parent's residuals — by memorylessness the redraw has exactly the
    residual's distribution, and it is what makes splitting effective:
    clones sharing every residual clock all fire the same first
    transition at the same instant, so an all-exponential excursion
    would collapse back in lock-step and the split would explore
    nothing.  Non-exponential residuals (deterministic timeouts,
    Gaussian service times) are genuinely part of the GSMP state and
    are always inherited verbatim.
    """
    names = set()
    for transition in lts.transitions:
        rate = transition.rate
        if isinstance(rate, ExpRate) or (
            isinstance(rate, GeneralRate)
            and isinstance(rate.distribution, Exponential)
        ):
            names.add(transition.event or transition.label)
    return frozenset(names)


def _resample(
    trajectories: List[_Trajectory],
    table: Sequence[int],
    splits: int,
    coin: np.random.Generator,
    next_ident: int,
    run_index: int,
    allocator: EventStreamAllocator,
    memoryless: frozenset,
) -> Tuple[List[_Trajectory], int, int, int]:
    """Fixed-effort resampling at one segment boundary.

    Bins trajectories by current level, then runs two deterministic
    passes:

    1. **Merge** every bin down to its cap — ``splits`` for rare bins,
       1 for the base bin (the event budget belongs to excursions, not
       to redundant copies of the typical behaviour a naive estimator
       already covers cheaply).  A merge is weight-conserving roulette
       between the two lightest members: the survivor is chosen with
       probability proportional to weight and takes the summed weight,
       so every weighted estimate stays unbiased.
    2. **Split** every non-empty rare bin up to ``splits`` members: the
       heaviest member halves its weight into a clone that inherits the
       checkpoint (state + residual clocks, with memoryless residuals
       redrawn — see :func:`_memoryless_events`).

    Clones draw from *slot* streams: allocator rows are a pool of
    independent substreams keyed ``(run, slot)``, and a clone simply
    occupies a free slot (or grows the pool), continuing that slot's
    stream where its previous occupant left off.  A continuation of an
    i.i.d. stream is fresh randomness never observed before, so the
    clone's future is independent of everything else in the tree —
    statistically identical to a per-clone stream, but without paying
    a generator construction and a block refill for every short-lived
    clone.  Compaction keeps live slots exactly ``0..n-1`` so the
    batched kernel never simulates a merged-away trajectory.

    All ordering is by weight then trajectory id, so the resample — and
    therefore the whole tree — is deterministic.
    """
    bins: Dict[int, List[_Trajectory]] = {}
    for trajectory in trajectories:
        bins.setdefault(table[trajectory.state], []).append(trajectory)
    free_rows: List[int] = []
    spawned = merged = 0
    for level in sorted(bins):
        group = bins[level]
        cap = 1 if level == 0 else splits
        while len(group) > cap:
            group.sort(key=lambda t: (t.weight, t.ident))
            light, other = group[0], group[1]
            total = light.weight + other.weight
            pick = float(coin.random())
            keep = light if pick * total < light.weight else other
            lost = other if keep is light else light
            keep.weight = total
            free_rows.append(lost.row)
            group = [keep] + group[2:]
            merged += 1
        bins[level] = group
    free_rows.sort()
    for level in sorted(bins):
        if level == 0:
            continue
        group = bins[level]
        while 0 < len(group) < splits:
            group.sort(key=lambda t: (-t.weight, t.ident))
            parent = group[0]
            parent.weight /= 2.0
            if free_rows:
                row = free_rows.pop(0)
            else:
                # New slot keys are the spawning clone's ident — unique
                # for the tree's whole life, so a slot position freed by
                # truncation can never resurrect an earlier slot's
                # stream (which would replay observed randomness).
                row = allocator.add_row((run_index, next_ident))
            clone = _Trajectory(
                next_ident,
                parent.weight,
                parent.state,
                {
                    name: value
                    for name, value in parent.clocks.items()
                    if name not in memoryless
                },
                row,
            )
            next_ident += 1
            group.append(clone)
            spawned += 1
    survivors = [t for level in sorted(bins) for t in bins[level]]
    survivors.sort(key=lambda t: t.ident)
    # Compact slots to 0..n-1: a survivor on a high slot adopts a free
    # low slot (continuing that slot's stream — same independence
    # argument as clone placement), and the tail is dropped.
    n = len(survivors)
    holes = sorted(row for row in free_rows if row < n)
    movers = sorted(
        (t for t in survivors if t.row >= n), key=lambda t: t.row
    )
    for hole, trajectory in zip(holes, movers):
        trajectory.row = hole
    allocator.truncate_rows(n)
    return survivors, spawned, merged, next_ident


# Per-process simulator reuse across the trees of one batch (the same
# memo discipline as repro.sim.output's replication workers).
_WORKER_SPLIT: Optional[Tuple[Any, Any]] = None


def _tree_task(shared: Any, run_index: int) -> Dict[str, Any]:
    """Grow and estimate one splitting tree (one replication index).

    Everything the tree draws is a pure function of ``(seed,
    run_index, trajectory id, event name)``, so this task returns the
    same bytes whichever worker runs it, however many times it is
    retried, and whatever the batch composition is.
    """
    with tracing.span("splitting:tree", index=run_index) as tree_span:
        tree = _grow_tree(shared, run_index)
        tree_span.set_attributes(
            events=tree["events"],
            clones=tree["clones"],
            merges=tree["merges"],
        )
        return tree


def _grow_tree(shared: Any, run_index: int) -> Dict[str, Any]:
    global _WORKER_SPLIT
    (
        lts, measures, clock_semantics, run_length, warmup, seed,
        engine, levels, splits, segments, table, memoryless,
    ) = shared
    if _WORKER_SPLIT is None or _WORKER_SPLIT[0] is not shared:
        simulator = (
            FastSimulator(lts, measures, clock_semantics)
            if engine == "fast"
            else Simulator(lts, measures, clock_semantics)
        )
        _WORKER_SPLIT = (shared, simulator)
    simulator = _WORKER_SPLIT[1]
    names = [m.name for m in measures]

    if splits <= 1:
        # Degenerate configuration: no clone or merge can ever happen,
        # so skip the segment machinery entirely — one engine call,
        # bit-identical to naive replication on the fast-engine stream
        # discipline (the differential test pins this).
        if engine == "fast":
            [result] = simulator.run_many(
                run_length,
                seed=seed,
                warmup=warmup,
                run_indices=[run_index],
            )
        else:
            allocator = EventStreamAllocator(seed, [run_index])
            result = simulator.run(
                run_length,
                None,
                warmup,
                streams=allocator.run_view(0),
            )
        top = table[result.final_state]
        occupancy = [
            1.0 if level <= top else 0.0 for level in range(levels + 1)
        ]
        return {
            "measures": dict(result.measures),
            "occupancy": occupancy,
            "events": result.events_fired,
            "clones": 0,
            "merges": 0,
            "peak": 1,
        }

    segment_length = run_length / segments
    coin = splitting_event_generator(
        seed, run_index, 0, RESAMPLE_STREAM
    )
    allocator = EventStreamAllocator(seed, [(run_index, 0)])
    trajectories = [_Trajectory(0, 1.0, None, None, 0)]
    next_ident = 1
    totals = {name: 0.0 for name in names}
    occupancy = [0.0] * (levels + 1)
    events = clones = merges = 0
    peak = 1
    for segment in range(segments):
        segment_warmup = warmup if segment == 0 else 0.0
        # run_many indexes its batch by allocator row, so feed the
        # trajectories in row order (rows and live trajectories are
        # one-to-one — _resample compacts after every boundary).
        ordered = sorted(trajectories, key=lambda t: t.row)
        if engine == "fast":
            restart = {}
            if segment > 0:
                restart = {
                    "start_states": [t.state for t in ordered],
                    "start_clocks": [t.clocks for t in ordered],
                }
            results = simulator.run_many(
                segment_length,
                warmup=segment_warmup,
                allocator=allocator,
                **restart,
            )
        else:
            results = [
                simulator.run(
                    segment_length,
                    None,
                    segment_warmup,
                    start_state=t.state,
                    start_clocks=t.clocks,
                    streams=allocator.run_view(t.row),
                )
                for t in ordered
            ]
        for trajectory, result in zip(ordered, results):
            trajectory.state = result.final_state
            trajectory.clocks = result.final_clocks
            events += result.events_fired
            for name in names:
                totals[name] += (
                    trajectory.weight * result.measures[name]
                )
            top = table[trajectory.state]
            for level in range(top + 1):
                occupancy[level] += trajectory.weight / segments
        if segment < segments - 1:
            trajectories, spawned, removed, next_ident = _resample(
                trajectories, table, splits, coin, next_ident,
                run_index, allocator, memoryless,
            )
            clones += spawned
            merges += removed
            peak = max(peak, len(trajectories))
    return {
        # Each segment contributes 1/segments of the measured horizon,
        # so the per-tree estimate is the segment-mean of the weighted
        # time averages.
        "measures": {
            name: totals[name] / segments for name in names
        },
        "occupancy": occupancy,
        "events": events,
        "clones": clones,
        "merges": merges,
        "peak": peak,
    }


def split_replicate(
    lts: LTS,
    measures: Sequence[Measure],
    run_length: float,
    levels: int = 4,
    splits: int = 4,
    segments: int = 32,
    importance: Union[
        ImportanceFunction, Callable[[int], int], None
    ] = None,
    rare_measure: Optional[str] = None,
    runs: int = 30,
    warmup: float = 0.0,
    seed: int = 20040628,
    confidence: float = 0.90,
    clock_semantics: str = "enabling_memory",
    engine: Optional[str] = "fast",
    workers: int = 1,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    tracer: Optional[TraceRecorder] = None,
) -> SplittingResult:
    """Rare-event splitting estimation of all measures.

    Grows one splitting tree per replication index (``runs`` trees),
    each an independent unbiased estimate, and summarises them like
    :func:`repro.sim.output.replicate` — plus the rare-probability
    intervals and per-level diagnostics of :class:`SplittingResult`.

    *importance* may be a prebuilt :class:`ImportanceFunction`, a
    ``state -> level`` callable, or ``None`` to derive levels from the
    reward support of the measure named *rare_measure* (default: the
    first measure).  Trees are one executor task each and all streams
    are pure functions of ``(seed, run index, slot key, event name)``,
    so the estimates are bit-identical for any ``workers``.
    """
    if runs < 2:
        raise SimulationError("need at least two runs for an interval")
    if levels < 1:
        raise SimulationError(f"need levels >= 1, got {levels}")
    if splits < 1:
        raise SimulationError(f"need splits >= 1, got {splits}")
    if segments < 1:
        raise SimulationError(f"need segments >= 1, got {segments}")
    if run_length <= 0:
        raise SimulationError(
            f"run_length must be positive, got {run_length}"
        )
    resolved_engine = resolve_engine(engine)
    if isinstance(importance, ImportanceFunction):
        if len(importance.table) != lts.num_states:
            raise SimulationError(
                f"importance table covers {len(importance.table)} "
                f"states but the model has {lts.num_states}"
            )
        if importance.levels != levels:
            raise SimulationError(
                f"importance function has {importance.levels} levels "
                f"but the splitting run asked for {levels}"
            )
        resolved = importance
    elif callable(importance):
        resolved = tabulate_importance(lts, importance, levels)
    else:
        by_name = {m.name: m for m in measures}
        if rare_measure is None:
            target = measures[0]
        elif rare_measure in by_name:
            target = by_name[rare_measure]
        else:
            raise SimulationError(
                f"unknown rare measure {rare_measure!r} (have "
                f"{', '.join(by_name)})"
            )
        resolved = reward_importance(lts, target, levels)

    executor = ParallelExecutor(workers)
    resilience = {}
    if retry is not None or faults is not None or tracer is not None:
        resilience = {
            "retry": retry, "faults": faults, "tracer": tracer,
            "phase": "split-replicate",
        }
    shared = (
        lts, tuple(measures), clock_semantics, run_length, warmup,
        seed, resolved_engine, levels, splits, segments,
        resolved.table, _memoryless_events(lts),
    )
    names = [m.name for m in measures]
    samples: Dict[str, List[float]] = {name: [] for name in names}
    occupancy: List[List[float]] = [[] for _ in range(levels + 1)]
    events = clones = merges = 0
    peak = 0
    with tracing.span(
        "splitting:replicate",
        runs=runs,
        levels=levels,
        splits=splits,
        segments=segments,
        workers=workers,
    ) as split_span:
        for tree in executor.map(
            _tree_task, range(runs), shared=shared, chunksize=1,
            **resilience,
        ):
            for name in names:
                samples[name].append(tree["measures"][name])
            for level in range(levels + 1):
                occupancy[level].append(tree["occupancy"][level])
            events += tree["events"]
            clones += tree["clones"]
            merges += tree["merges"]
            peak = max(peak, tree["peak"])
        split_span.set_attributes(
            events=events, clones=clones, merges=merges, peak=peak,
        )
    estimates = {
        name: summarize(values, confidence)
        for name, values in samples.items()
    }
    rare = {
        name: summarize_rare(values, confidence)
        for name, values in samples.items()
        if all(value >= 0.0 for value in values)
    }
    registry = obs_metrics.get_registry()
    if registry.enabled:
        obs_metrics.SPLITTING_TREES.on(registry).inc(runs)
        obs_metrics.SPLITTING_CLONES.on(registry).inc(clones)
        obs_metrics.SPLITTING_MERGES.on(registry).inc(merges)
        obs_metrics.SPLITTING_EVENTS.on(registry).inc(events)
    return SplittingResult(
        estimates=estimates,
        rare=rare,
        samples=samples,
        occupancy=occupancy,
        levels=levels,
        splits=splits,
        segments=segments,
        confidence=confidence,
        events=events,
        clones=clones,
        merges=merges,
        peak_trajectories=peak,
    )

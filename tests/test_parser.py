"""Tests for the architectural-description parser."""

import pytest

from repro.aemilia import parse_architecture
from repro.aemilia.ast import ActionPrefix, Choice, Guarded, ProcessCall, Stop
from repro.aemilia.elemtypes import Direction, Multiplicity
from repro.aemilia.expressions import DataType
from repro.aemilia.rates import (
    ExpSpec,
    GeneralSpec,
    ImmediateSpec,
    PassiveSpec,
)
from repro.errors import ParseError


def minimal(behavior: str, interactions: str = "void", outputs: str = "void"):
    """Wrap a single behaviour equation into a parseable architecture."""
    return parse_architecture(f"""
ARCHI_TYPE Test_Archi(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Solo_Type(void)
  BEHAVIOR
    Main(void; void) = {behavior}
  INPUT_INTERACTIONS {interactions}
  OUTPUT_INTERACTIONS {outputs}
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : Solo_Type()
END
""")


def main_body(archi):
    return archi.elem_types["Solo_Type"].definition("Main").body


class TestBehaviours:
    def test_stop(self):
        assert isinstance(main_body(minimal("stop")), Stop)

    def test_prefix_chain(self):
        body = main_body(minimal("<a, _> . <b, _> . Main()"))
        assert isinstance(body, ActionPrefix)
        assert isinstance(body.continuation, ActionPrefix)
        assert isinstance(body.continuation.continuation, ProcessCall)

    def test_choice(self):
        body = main_body(minimal("choice { <a, _> . Main(), <b, _> . stop }"))
        assert isinstance(body, Choice)
        assert len(body.alternatives) == 2

    def test_guard(self):
        archi = parse_architecture("""
ARCHI_TYPE Guard_Archi(const int cap := 2)
ARCHI_ELEM_TYPES
ELEM_TYPE Cell_Type(void)
  BEHAVIOR
    Cell(int n := 0; void) =
      choice {
        cond(n < cap) -> <up, _> . Cell(n + 1),
        cond(n > 0) -> <down, _> . Cell(n - 1)
      }
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : Cell_Type(0)
END
""")
        body = archi.elem_types["Cell_Type"].definition("Cell").body
        assert isinstance(body, Choice)
        assert all(isinstance(alt, Guarded) for alt in body.alternatives)


class TestRates:
    @pytest.mark.parametrize(
        "text,expected_type",
        [
            ("_", PassiveSpec),
            ("_(1, 2.0)", PassiveSpec),
            ("exp(2.0)", ExpSpec),
            ("exp(1 / mean)", ExpSpec),
            ("inf", ImmediateSpec),
            ("inf(2, 0.5)", ImmediateSpec),
            ("det(3.0)", GeneralSpec),
            ("normal(0.8, 0.03)", GeneralSpec),
            ("unif(1.0, 2.0)", GeneralSpec),
            ("erlang(3, 2.0)", GeneralSpec),
        ],
    )
    def test_rate_forms(self, text, expected_type):
        spec = f"""
ARCHI_TYPE Rate_Archi(const real mean := 1.0)
ARCHI_ELEM_TYPES
ELEM_TYPE R_Type(void)
  BEHAVIOR
    Main(void; void) = <a, {text}> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : R_Type()
END
"""
        archi = parse_architecture(spec)
        body = archi.elem_types["R_Type"].definition("Main").body
        assert isinstance(body.rate, expected_type)

    def test_bad_rate(self):
        with pytest.raises(ParseError, match="expected a rate"):
            minimal("<a, 42> . stop")


class TestInteractions:
    def test_declarations_with_multiplicities(self):
        archi = parse_architecture("""
ARCHI_TYPE Multi_Archi(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Hub_Type(void)
  BEHAVIOR
    Hub(void; void) = choice {
      <take_a, _> . Hub(),
      <take_b, _> . Hub(),
      <give, _> . Hub()
    }
  INPUT_INTERACTIONS UNI take_a; take_b
  OUTPUT_INTERACTIONS OR give
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    H : Hub_Type()
END
""")
        hub = archi.elem_types["Hub_Type"]
        assert hub.interaction("take_a").direction is Direction.INPUT
        assert hub.interaction("take_a").multiplicity is Multiplicity.UNI
        assert hub.interaction("give").multiplicity is Multiplicity.OR

    def test_mixed_multiplicity_groups(self):
        archi = parse_architecture("""
ARCHI_TYPE Mixed_Archi(void)
ARCHI_ELEM_TYPES
ELEM_TYPE M_Type(void)
  BEHAVIOR
    M(void; void) = choice {
      <a, _> . M(), <b, _> . M(), <c, _> . M()
    }
  INPUT_INTERACTIONS UNI a; b; AND c
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : M_Type()
END
""")
        m = archi.elem_types["M_Type"]
        assert m.interaction("b").multiplicity is Multiplicity.UNI
        assert m.interaction("c").multiplicity is Multiplicity.AND


class TestHeaderAndTopology:
    def test_const_parameters(self, mm1k):
        params = {p.name: p for p in mm1k.const_params}
        assert params["capacity"].type is DataType.INT
        assert params["arrival_rate"].type is DataType.REAL

    def test_instances_and_attachments(self, pingpong):
        assert [i.name for i in pingpong.instances] == ["P", "Q"]
        assert len(pingpong.attachments) == 2
        assert pingpong.attachments[0].from_instance == "P"

    def test_instance_arguments(self, mm1k):
        queue = mm1k.instance("Q")
        assert len(queue.args) == 1

    def test_formals_with_defaults(self, mm1k):
        queue_def = mm1k.elem_types["Queue_Type"].definition("Queue")
        assert queue_def.formals[0].name == "n"
        assert queue_def.formals[0].default is not None


class TestErrors:
    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_architecture("""
ARCHI_TYPE Bad_Archi(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = stop
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
""")

    def test_error_carries_position(self):
        try:
            parse_architecture("ARCHI_TYPE 123(void)")
        except ParseError as error:
            assert error.line == 1
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_missing_rate_comma(self):
        with pytest.raises(ParseError):
            minimal("<a _> . stop")

    def test_trailing_garbage(self):
        good = """
ARCHI_TYPE G_Archi(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = stop
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END extra
"""
        with pytest.raises(ParseError):
            parse_architecture(good)

    def test_behaviour_without_equals(self):
        with pytest.raises(ParseError):
            parse_architecture("""
ARCHI_TYPE B_Archi(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) stop
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")


class TestPaperSpecsParse:
    """The verbatim paper listings must parse."""

    def test_rpc_simplified(self):
        from repro.casestudies.rpc.functional import simplified_architecture

        archi = simplified_architecture()
        assert archi.name == "Rpc_Dpm_Untimed_Simplified"
        assert len(archi.instances) == 5

    def test_rpc_revised(self):
        from repro.casestudies.rpc.functional import revised_architecture

        archi = revised_architecture()
        assert len(archi.attachments) == 7

    def test_rpc_markovian_variants(self):
        from repro.casestudies.rpc.markovian import (
            dpm_architecture,
            nodpm_architecture,
        )

        assert len(dpm_architecture().instances) == 5
        assert len(nodpm_architecture().instances) == 4

    def test_streaming_variants(self):
        from repro.casestudies.streaming.markovian import (
            dpm_architecture,
            nodpm_architecture,
        )

        assert len(dpm_architecture().instances) == 7
        assert len(nodpm_architecture().instances) == 6

"""Tests for the exception hierarchy contract."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    LexerError,
    ParseError,
    ReproError,
    SpecificationError,
)


def all_error_classes():
    return [
        obj
        for _, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, ReproError), cls.__name__

    def test_catching_the_base_class_suffices(self):
        """The contract the fuzz tests rely on: one except clause."""
        with pytest.raises(ReproError):
            raise ParseError("boom", 3, 7)

    def test_language_errors_are_specification_errors(self):
        assert issubclass(LexerError, SpecificationError)
        assert issubclass(ParseError, SpecificationError)

    def test_positions_embedded_in_messages(self):
        error = LexerError("bad char", 4, 9)
        assert "line 4" in str(error)
        assert error.line == 4 and error.column == 9
        located = ParseError("unexpected", 2, 5)
        assert "line 2" in str(located)
        anonymous = ParseError("no location")
        assert "line" not in str(anonymous)

    def test_every_class_documented(self):
        for cls in all_error_classes():
            assert cls.__doc__, f"{cls.__name__} lacks a docstring"

"""Tests for trade-off curves and Pareto analysis (Figs. 7-8 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TradeoffCurve, TradeoffPoint, compare_curves


class TestDominance:
    def test_strict_dominance(self):
        better = TradeoffPoint(1.0, performance=0.1, energy=1.0)
        worse = TradeoffPoint(2.0, performance=0.2, energy=2.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = TradeoffPoint(1.0, 0.1, 1.0)
        b = TradeoffPoint(2.0, 0.1, 1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable_points(self):
        a = TradeoffPoint(1.0, performance=0.1, energy=2.0)
        b = TradeoffPoint(2.0, performance=0.2, energy=1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_dominance_with_tolerance(self):
        a = TradeoffPoint(1.0, 0.100, 1.0)
        b = TradeoffPoint(2.0, 0.101, 2.0)
        assert a.dominates(b)
        # With a coarse tolerance the energy gap is no longer 'strict'.
        assert not a.dominates(b, tolerance=5.0)


class TestCurve:
    def _curve(self):
        return TradeoffCurve.from_sweep(
            "test",
            parameters=[1, 2, 3, 4],
            performance=[0.4, 0.3, 0.35, 0.1],
            energy=[1.0, 2.0, 3.0, 4.0],
        )

    def test_from_sweep_validates_lengths(self):
        with pytest.raises(ValueError):
            TradeoffCurve.from_sweep("bad", [1], [0.1, 0.2], [1.0])

    def test_pareto_front(self):
        front = self._curve().pareto_front()
        parameters = sorted(p.parameter for p in front)
        # (3) perf 0.35/energy 3.0 is dominated by (2) 0.3/2.0.
        assert parameters == [1, 2, 4]

    def test_dominated_points(self):
        dominated = self._curve().dominated_points()
        assert [p.parameter for p in dominated] == [3]

    def test_front_sorted_by_performance(self):
        front = self._curve().pareto_front()
        performances = [p.performance for p in front]
        assert performances == sorted(performances)

    def test_knee_point_balanced(self):
        curve = TradeoffCurve.from_sweep(
            "knee",
            parameters=[1, 2, 3],
            performance=[1.0, 0.2, 0.0],
            energy=[0.0, 0.2, 1.0],
        )
        knee = curve.knee_point()
        assert knee.parameter == 2

    def test_knee_of_empty_curve(self):
        assert TradeoffCurve("empty", []).knee_point() is None

    def test_describe_mentions_dominated(self):
        text = self._curve().describe()
        assert "1 dominated" in text
        assert "knee" in text

    def test_compare_curves(self):
        curves = [self._curve(), TradeoffCurve("flat", [])]
        summary = compare_curves(curves)
        assert summary["test"] == (3, 1)
        assert summary["flat"] == (0, 0)


@settings(max_examples=50, deadline=None)
@given(
    points=st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10)),
        min_size=1,
        max_size=12,
    )
)
def test_pareto_front_properties(points):
    curve = TradeoffCurve(
        "hyp",
        [TradeoffPoint(float(i), x, y) for i, (x, y) in enumerate(points)],
    )
    front = curve.pareto_front()
    dominated = curve.dominated_points()
    # Partition: every point is exactly on one side.
    assert len(front) + len(dominated) == len(curve.points)
    # No front point dominates another front point.
    for a in front:
        for b in front:
            if a is not b:
                assert not a.dominates(b)
    # Every dominated point is dominated by some front point.
    for point in dominated:
        assert any(other.dominates(point) for other in curve.points)

"""Tests for plain-text tables and ASCII charts."""

import pytest

from repro.core.reporting import (
    ascii_chart,
    format_comparison,
    format_number,
    format_table,
)


class TestFormatNumber:
    def test_moderate_magnitudes_plain(self):
        assert format_number(1.2345).strip() == "1.234"
        assert format_number(12345.0).strip() == "1.234e+04"

    def test_small_magnitudes_scientific(self):
        assert "e" in format_number(1.5e-7)

    def test_zero(self):
        assert format_number(0.0).strip() == "0"

    def test_nan_becomes_dash(self):
        assert format_number(float("nan")).strip() == "-"

    def test_width_respected(self):
        assert len(format_number(3.0, width=12)) == 12


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["b", 22.5]],
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4  # header, rule, two rows

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            [0, 1, 2, 3],
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=20,
            height=6,
        )
        assert "*" in chart and "o" in chart
        assert "* = up" in chart and "o = down" in chart

    def test_bounds_in_footer(self):
        chart = ascii_chart([0, 10], {"s": [5.0, 7.0]}, width=10, height=4)
        assert "0" in chart and "10" in chart

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart([0, 1], {"s": [2.0, 2.0]})
        assert "s" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([], {})

    def test_non_finite_values_skipped(self):
        chart = ascii_chart(
            [0, 1, 2], {"s": [1.0, float("nan"), 3.0]}, width=10, height=4
        )
        assert "s" in chart

    def test_all_non_finite_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [float("nan"), float("inf") - float("inf")]})


class TestComparison:
    def test_side_by_side_columns(self):
        text = format_comparison(
            "timeout",
            [1.0, 2.0],
            with_dpm={"energy": [1.0, 2.0]},
            without_dpm={"energy": [3.0, 3.0]},
        )
        assert "energy (DPM)" in text
        assert "energy (NO-DPM)" in text

    def test_missing_baseline_rendered_as_dash(self):
        text = format_comparison(
            "timeout",
            [1.0],
            with_dpm={"energy": [1.0]},
            without_dpm={},
        )
        assert "-" in text

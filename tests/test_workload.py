"""Unit tests for the workload subsystem (docs/WORKLOADS.md).

Covers the four layers in isolation — trace container + I/O,
generators, replay distribution, fitting — plus the hook-level helpers
(``apply_workload``, ``parse_workload``, ``workload_fingerprint``) on a
tiny hand-built LTS.  End-to-end behaviour through the methodology is in
``test_workload_integration.py``.
"""

import math
import pickle

import numpy as np
import pytest

from repro.aemilia.rates import (
    ExpRate,
    GeneralRate,
    ImmediateRate,
    PassiveRate,
)
from repro.distributions import (
    Deterministic,
    Exponential,
    Pareto,
    Weibull,
)
from repro.errors import WorkloadError
from repro.lts.lts import LTS
from repro.sim.random import make_generator
from repro.workload import (
    DiurnalGenerator,
    MMPPGenerator,
    ParetoGenerator,
    PoissonGenerator,
    TraceReplay,
    WorkloadTrace,
    apply_workload,
    fit_trace,
    ks_pvalue,
    ks_statistic,
    parse_generator_spec,
    parse_workload,
    read_trace,
    workload_fingerprint,
    write_trace,
)


def rng(seed=12345):
    return make_generator(seed)


def small_trace(values=(1.0, 2.0, 0.5, 3.0)):
    return WorkloadTrace(np.asarray(values), {"origin": "test"})


class TestWorkloadTrace:
    def test_payload_is_read_only_float64(self):
        trace = small_trace()
        assert trace.interarrivals.dtype == np.float64
        assert not trace.interarrivals.flags.writeable
        with pytest.raises(ValueError):
            trace.interarrivals[0] = 9.0

    def test_validation_rejects_bad_payloads(self):
        with pytest.raises(WorkloadError, match="one-dimensional"):
            WorkloadTrace(np.ones((2, 2)))
        with pytest.raises(WorkloadError, match="at least one event"):
            WorkloadTrace(np.array([]))
        with pytest.raises(WorkloadError, match="not finite"):
            WorkloadTrace(np.array([1.0, math.inf]))
        with pytest.raises(WorkloadError, match="strictly positive"):
            WorkloadTrace(np.array([1.0, 0.0, 2.0]))
        with pytest.raises(WorkloadError, match="strictly positive"):
            WorkloadTrace(np.array([1.0, -0.5]))

    def test_event_times_round_trip(self):
        trace = small_trace()
        times = trace.event_times()
        assert times == pytest.approx([1.0, 3.0, 3.5, 6.5])
        back = WorkloadTrace.from_event_times(times)
        assert back == trace

    def test_moments_and_cv2(self):
        trace = small_trace()
        values = np.asarray([1.0, 2.0, 0.5, 3.0])
        assert trace.mean == pytest.approx(values.mean())
        assert trace.variance == pytest.approx(values.var(ddof=1))
        assert trace.cv2 == pytest.approx(
            values.var(ddof=1) / values.mean() ** 2
        )

    def test_fingerprint_is_content_identity(self):
        one = small_trace()
        two = WorkloadTrace(one.interarrivals, {"different": "metadata"})
        assert one.fingerprint == two.fingerprint
        assert one == two
        assert hash(one) == hash(two)
        other = small_trace((1.0, 2.0, 0.5, 3.0001))
        assert one.fingerprint != other.fingerprint
        assert one != other

    def test_rescaled_preserves_shape(self):
        trace = small_trace()
        scaled = trace.rescaled(9.7)
        assert scaled.mean == pytest.approx(9.7)
        assert scaled.cv2 == pytest.approx(trace.cv2)
        assert scaled.metadata["rescaled_to_mean"] == 9.7
        with pytest.raises(WorkloadError):
            trace.rescaled(0.0)

    @pytest.mark.parametrize("suffix", [".jsonl", ".csv"])
    def test_file_round_trip(self, tmp_path, suffix):
        trace = small_trace()
        path = write_trace(trace, tmp_path / f"trace{suffix}")
        loaded = read_trace(path)
        assert loaded == trace  # exact float64 round trip (repr floats)
        assert loaded.fingerprint == trace.fingerprint
        if suffix == ".jsonl":
            assert loaded.metadata["origin"] == "test"

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="suffix"):
            write_trace(small_trace(), tmp_path / "trace.bin")
        with pytest.raises(WorkloadError, match="not found"):
            read_trace(tmp_path / "missing.jsonl")

    def test_jsonl_header_is_validated(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n1.0\n')
        with pytest.raises(WorkloadError, match="not a repro-workload"):
            read_trace(path)
        path.write_text("not json\n")
        with pytest.raises(WorkloadError, match="JSON header"):
            read_trace(path)
        path.write_text(
            '{"format": "repro-workload", "version": 99}\n1.0\n'
        )
        with pytest.raises(WorkloadError, match="version"):
            read_trace(path)

    def test_jsonl_bad_value_line_is_located(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-workload", "version": 1}\n1.0\nbogus\n'
        )
        with pytest.raises(WorkloadError, match=":3"):
            read_trace(path)


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [
            PoissonGenerator(0.5),
            MMPPGenerator(2.0, 0.05, 5.0, 50.0),
            ParetoGenerator(1.5, 3.0),
            DiurnalGenerator(1.0, 0.8, 200.0),
        ],
    )
    def test_same_seed_bit_identical(self, generator):
        one = generator.generate(500, seed=7)
        two = generator.generate(500, seed=7)
        assert one.fingerprint == two.fingerprint
        assert len(one) == 500
        other = generator.generate(500, seed=8)
        assert one.fingerprint != other.fingerprint
        assert one.metadata == {"generator": generator.spec(), "seed": 7}

    def test_poisson_matches_exponential_moments(self):
        trace = PoissonGenerator(0.2).generate(20_000, seed=3)
        assert trace.mean == pytest.approx(5.0, rel=0.05)
        assert trace.cv2 == pytest.approx(1.0, abs=0.1)

    def test_mmpp_is_bursty(self):
        trace = MMPPGenerator(2.0, 0.05, 5.0, 50.0).generate(5_000, seed=3)
        assert trace.cv2 > 1.5  # over-dispersed vs Poisson

    def test_pareto_generator_matches_distribution(self):
        trace = ParetoGenerator(2.5, 1.0).generate(20_000, seed=3)
        assert trace.mean == pytest.approx(Pareto(2.5, 1.0).mean, rel=0.05)
        assert float(np.min(trace.interarrivals)) >= 1.0

    def test_diurnal_mean_rate_is_base_rate(self):
        # The sinusoid averages out over whole periods.
        trace = DiurnalGenerator(0.5, 0.8, 100.0).generate(20_000, seed=3)
        assert trace.mean == pytest.approx(2.0, rel=0.05)

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError, match="rate_high"):
            MMPPGenerator(0.05, 2.0, 5.0, 50.0)
        with pytest.raises(WorkloadError, match="amplitude"):
            DiurnalGenerator(1.0, 1.5, 100.0)
        with pytest.raises(WorkloadError, match="positive"):
            PoissonGenerator(0.0)
        with pytest.raises(WorkloadError, match="length"):
            PoissonGenerator(1.0).generate(0, seed=1)

    def test_spec_round_trip(self):
        for text in (
            "poisson:0.5",
            "mmpp:2,0.05,5,50",
            "pareto:1.5,3",
            "diurnal:1,0.8,200",
        ):
            generator = parse_generator_spec(text)
            assert parse_generator_spec(generator.spec()) == generator

    def test_spec_errors_are_precise(self):
        with pytest.raises(WorkloadError, match="empty generator spec"):
            parse_generator_spec("  ")
        with pytest.raises(WorkloadError, match="unknown generator 'zeta'"):
            parse_generator_spec("zeta:1.0")
        with pytest.raises(WorkloadError, match="missing its arguments"):
            parse_generator_spec("poisson")
        with pytest.raises(WorkloadError, match="argument 2 .* not a number"):
            parse_generator_spec("pareto:1.5,fast")
        with pytest.raises(WorkloadError, match="expects 4"):
            parse_generator_spec("mmpp:2,0.05")


class TestTraceReplay:
    def test_bootstrap_draws_are_trace_values(self):
        trace = small_trace()
        replay = TraceReplay(trace)
        generator = rng()
        values = {replay.sample(generator) for _ in range(200)}
        assert values <= set(trace.interarrivals.tolist())
        assert len(values) == len(trace)  # all four hit within 200 draws

    def test_bootstrap_is_pure_function_of_rng_state(self):
        replay = TraceReplay(small_trace())
        one = [replay.sample(rng(5)) for _ in range(1)]
        first = rng(5)
        second = rng(5)
        assert [replay.sample(first) for _ in range(50)] == [
            replay.sample(second) for _ in range(50)
        ]

    def test_cycle_walks_the_trace_in_order(self):
        trace = small_trace()
        replay = TraceReplay(trace, "cycle")
        generator = rng()
        draws = [replay.sample(generator) for _ in range(8)]
        ring = trace.interarrivals.tolist() * 3
        start = ring.index(draws[0])
        assert draws == ring[start:start + 8]

    def test_cycle_cursors_are_per_generator(self):
        replay = TraceReplay(small_trace(), "cycle")
        a, b = rng(1), rng(2)
        seq_a = [replay.sample(a) for _ in range(4)]
        seq_b = [replay.sample(b) for _ in range(4)]
        # Each generator replays the full ring from its own offset.
        assert sorted(seq_a) == sorted(seq_b)

    def test_pickle_round_trip_drops_cursors(self):
        replay = TraceReplay(small_trace(), "cycle")
        generator = rng()
        replay.sample(generator)
        clone = pickle.loads(pickle.dumps(replay))
        assert clone == replay
        assert clone._cursors == {}
        # A fresh generator in the clone behaves like one in the original.
        assert clone.sample(rng(9)) == replay.sample(rng(9))

    def test_moments_and_empirical_cdf(self):
        trace = small_trace()
        replay = TraceReplay(trace)
        assert replay.mean == pytest.approx(trace.mean)
        assert replay.variance == pytest.approx(trace.variance)
        assert replay.cdf(0.4) == 0.0
        assert replay.cdf(1.0) == pytest.approx(0.5)  # 0.5 and 1.0
        assert replay.cdf(10.0) == 1.0

    def test_identity_follows_trace_and_mode(self):
        trace = small_trace()
        assert TraceReplay(trace) == TraceReplay(trace)
        assert TraceReplay(trace) != TraceReplay(trace, "cycle")
        assert hash(TraceReplay(trace)) == hash(TraceReplay(trace))

    def test_bad_arguments_rejected(self):
        with pytest.raises(WorkloadError, match="WorkloadTrace"):
            TraceReplay([1.0, 2.0])
        with pytest.raises(WorkloadError, match="unknown replay mode"):
            TraceReplay(small_trace(), "shuffle")


class TestFitting:
    def test_ks_statistic_on_exact_sample(self):
        # The empirical CDF of its own quantiles: D = 1/(2n) at best,
        # bounded by 1/n for the staircase offset.
        dist = Exponential(1.0)
        quantiles = [-math.log(1 - (i + 0.5) / 100) for i in range(100)]
        assert ks_statistic(np.asarray(quantiles), dist) <= 1.0 / 100

    def test_ks_pvalue_behaviour(self):
        assert ks_pvalue(0.0, 100) == 1.0
        assert ks_pvalue(0.5, 100) < 1e-6
        assert 0.0 < ks_pvalue(0.05, 400) < 1.0

    def test_exponential_trace_fits_exponential_best(self):
        trace = PoissonGenerator(1.0 / 9.7).generate(4_000, seed=11)
        report = fit_trace(trace)
        assert report.best.family in ("exp", "weibull", "erlang")
        exp_fit = report.candidate("exp")
        assert exp_fit.distribution.rate == pytest.approx(
            1.0 / trace.mean
        )
        assert exp_fit.pvalue > 0.01  # a correct model is not rejected

    def test_pareto_trace_fits_pareto_best(self):
        trace = ParetoGenerator(1.5, 3.0).generate(4_000, seed=11)
        report = fit_trace(trace)
        assert report.best.family == "pareto"
        assert report.best.distribution.alpha == pytest.approx(1.5, rel=0.1)
        assert report.best.distribution.xm == pytest.approx(3.0, rel=0.01)

    def test_degenerate_trace_skips_impossible_families(self):
        trace = WorkloadTrace(np.full(50, 2.5))
        report = fit_trace(trace)
        families = {candidate.family for candidate in report.candidates}
        # Only the total estimators survive a zero-variance sample.
        assert families == {"exp", "det"}
        assert report.candidate("det").distribution == Deterministic(2.5)

    def test_candidate_spec_round_trips(self):
        from repro.distributions import parse_distribution_spec

        trace = PoissonGenerator(0.2).generate(500, seed=2)
        for candidate in fit_trace(trace).candidates:
            parsed = parse_distribution_spec(candidate.spec)
            assert type(parsed) is type(candidate.distribution)
            assert parsed.mean == pytest.approx(
                candidate.distribution.mean, rel=1e-4
            )

    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError, match="unknown fit families"):
            fit_trace(small_trace(), families=["exp", "zeta"])

    def test_weibull_fit_counts_iterations(self):
        trace = PoissonGenerator(1.0).generate(2_000, seed=5)
        candidate = fit_trace(trace, families=["weibull"]).candidate(
            "weibull"
        )
        assert candidate.iterations > 1
        assert isinstance(candidate.distribution, Weibull)

    def test_report_as_dict_shape(self):
        report = fit_trace(PoissonGenerator(1.0).generate(200, seed=1))
        payload = report.as_dict()
        assert payload["best"] == report.best.family
        assert payload["trace"]["events"] == 200
        assert all("spec" in entry for entry in payload["candidates"])


def _hooked_lts():
    """start --a(exp)--> mid --b(general)--> mid2 --c(passive)--> start."""
    lts = LTS(0)
    for _ in range(3):
        lts.add_state()
    lts.add_transition(0, "P.a", 1, ExpRate(2.0))
    lts.add_transition(1, "P.b", 2, GeneralRate(Deterministic(1.0)))
    lts.add_transition(2, "P.c", 0, ExpRate(1.0))
    return lts


class TestApplyWorkload:
    def test_replaces_matching_timed_transitions(self):
        lts = _hooked_lts()
        workload = Pareto(1.5, 3.0)
        rewritten = apply_workload(lts, "P.a", workload)
        rates = {t.label: t.rate for t in rewritten.transitions}
        assert isinstance(rates["P.a"], GeneralRate)
        assert rates["P.a"].distribution is workload
        assert isinstance(rates["P.c"], ExpRate)  # untouched
        # The original LTS is not mutated.
        original = {t.label: t.rate for t in lts.transitions}
        assert isinstance(original["P.a"], ExpRate)

    def test_replaces_general_rates_too(self):
        rewritten = apply_workload(_hooked_lts(), "P.b", Exponential(3.0))
        rates = {t.label: t.rate for t in rewritten.transitions}
        assert rates["P.b"].distribution == Exponential(3.0)

    def test_wildcard_pattern_matches_participant(self):
        rewritten = apply_workload(_hooked_lts(), "P.*", Exponential(3.0))
        assert all(
            isinstance(t.rate, GeneralRate) for t in rewritten.transitions
        )

    def test_no_match_is_an_error(self):
        with pytest.raises(WorkloadError, match="matched no timed"):
            apply_workload(_hooked_lts(), "Q.missing", Exponential(1.0))

    def test_untimed_match_is_an_error(self):
        lts = LTS(0)
        lts.add_state()
        lts.add_state()
        lts.add_transition(0, "P.a", 1, ImmediateRate(1, 1.0))
        lts.add_transition(1, "P.b", 0, ExpRate(1.0))
        with pytest.raises(WorkloadError, match="not an active .*timed"):
            apply_workload(lts, "P.a", Exponential(1.0))
        passive = LTS(0)
        passive.add_state()
        passive.add_state()
        passive.add_transition(0, "P.a", 1, PassiveRate(1, 1.0))
        passive.add_transition(1, "P.b", 0, ExpRate(1.0))
        with pytest.raises(WorkloadError, match="not an active .*timed"):
            apply_workload(passive, "P.a", Exponential(1.0))


class TestParseWorkloadAndFingerprint:
    def test_closed_form_specs(self):
        assert parse_workload("exp:0.103") == Exponential(0.103)
        assert parse_workload("pareto:1.5,3.23") == Pareto(1.5, 3.23)

    def test_spec_errors_become_workload_errors(self):
        with pytest.raises(WorkloadError, match="unknown distribution"):
            parse_workload("zeta:1.0")
        with pytest.raises(WorkloadError, match="empty workload spec"):
            parse_workload("   ")

    def test_trace_form_with_and_without_mode(self, tmp_path):
        path = write_trace(small_trace(), tmp_path / "trace.jsonl")
        bootstrap = parse_workload(f"trace:{path}")
        assert isinstance(bootstrap, TraceReplay)
        assert bootstrap.mode == "bootstrap"
        cycle = parse_workload(f"trace:{path}:cycle")
        assert cycle.mode == "cycle"
        with pytest.raises(WorkloadError, match="not found"):
            parse_workload(f"trace:{tmp_path}/missing.jsonl")
        with pytest.raises(WorkloadError, match="missing the trace path"):
            parse_workload("trace:")

    def test_fingerprints_are_stable_identities(self):
        assert workload_fingerprint(None) == "none"
        assert workload_fingerprint(Exponential(2.0)) == "exp(2)"
        trace = small_trace()
        fingerprint = workload_fingerprint(TraceReplay(trace, "cycle"))
        assert fingerprint == f"replay:cycle:{trace.fingerprint}"
        assert fingerprint != workload_fingerprint(TraceReplay(trace))


class TestSimTraceRecorderAlias:
    """Satellite: the renamed EventTraceRecorder keeps its old name alive."""

    def test_deprecated_alias_warns_and_preserves_identity(self, mm1k):
        from repro.aemilia import generate_lts
        from repro.sim.trace import EventTraceRecorder, TraceRecorder

        lts = generate_lts(mm1k)
        with pytest.warns(DeprecationWarning, match="EventTraceRecorder"):
            recorder = TraceRecorder(lts, capacity=10)
        assert isinstance(recorder, EventTraceRecorder)
        recorder.run(50.0, make_generator(1))
        fresh = EventTraceRecorder(lts, capacity=10)
        fresh.run(50.0, make_generator(1))
        # Same behaviour, entry for entry: the alias is only a name.
        assert [str(e) for e in recorder.entries] == [
            str(e) for e in fresh.entries
        ]

    def test_new_name_does_not_warn(self, mm1k, recwarn):
        from repro.aemilia import generate_lts
        from repro.sim.trace import EventTraceRecorder

        lts = generate_lts(mm1k)
        EventTraceRecorder(lts, capacity=5)
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]

"""Tests for state-space generation (the composed operational semantics)."""

import pytest

from repro.aemilia import builder as b
from repro.aemilia import generate_lts, parse_architecture
from repro.aemilia.rates import ExpRate, ImmediateRate, PassiveRate
from repro.errors import (
    SpecificationError,
    StateSpaceLimitError,
    UnguardedRecursionError,
)


def parse_and_generate(spec, **kwargs):
    return generate_lts(parse_architecture(spec), **kwargs)


class TestBasicGeneration:
    def test_pingpong_cycle(self, pingpong):
        lts = generate_lts(pingpong)
        # send; (propagationless) reply; back to start: 2 states.
        assert lts.num_states == 2
        labels = lts.labels()
        assert "P.send_ping#Q.receive_ping" in labels
        assert "Q.send_pong#P.receive_pong" in labels

    def test_internal_action_label(self):
        lts = parse_and_generate("""
ARCHI_TYPE Solo(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <tick, _> . <tock, _> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        assert lts.labels() == {"X.tick", "X.tock"}
        assert lts.num_states == 2

    def test_stop_deadlocks(self):
        lts = parse_and_generate("""
ARCHI_TYPE Dead(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <last, _> . stop
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        assert lts.has_deadlock()
        assert lts.num_states == 2

    def test_data_parameters_bound_the_space(self, mm1k):
        lts = generate_lts(mm1k)
        # Queue levels 0..3, source idle/enqueueing, arrival hops.
        assert 4 <= lts.num_states <= 20

    def test_const_override_changes_space(self, mm1k):
        small = generate_lts(mm1k, {"capacity": 1})
        large = generate_lts(mm1k, {"capacity": 8})
        assert large.num_states > small.num_states

    def test_state_info_is_readable(self, pingpong):
        lts = generate_lts(pingpong)
        assert "P:" in lts.state_info(0)
        assert "Q:" in lts.state_info(0)

    def test_max_states_enforced(self, mm1k):
        with pytest.raises(StateSpaceLimitError):
            generate_lts(mm1k, {"capacity": 500}, max_states=10)


class TestSynchronisation:
    def test_active_passive_rate_combination(self):
        lts = parse_and_generate("""
ARCHI_TYPE Sync(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(3.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = <pull, _> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B.pull
END
""")
        assert lts.num_transitions == 1
        transition = lts.transitions[0]
        assert transition.label == "A.push#B.pull"
        assert transition.rate == ExpRate(3.0)
        assert transition.event == "A.push"

    def test_passive_weight_splitting(self):
        """Two passive branches split the active exponential by weight."""
        lts = parse_and_generate("""
ARCHI_TYPE Split(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(4.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = choice {
      <pull, _(0, 3.0)> . <left, _> . C(),
      <pull, _(0, 1.0)> . <right, _> . C()
    }
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B.pull
END
""")
        initial_moves = lts.outgoing(lts.initial)
        assert len(initial_moves) == 2
        rates = sorted(t.rate.rate for t in initial_moves)
        assert rates == pytest.approx([1.0, 3.0])
        assert all(t.event == "A.push" for t in initial_moves)

    def test_or_attachment_selects_among_partners(self):
        lts = parse_and_generate("""
ARCHI_TYPE Fanout(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(2.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS OR push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = <pull, _> . <work, exp(1.0)> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B1 : Cons_Type();
    B2 : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B1.pull;
    FROM A.push TO B2.pull
END
""")
        initial_moves = lts.outgoing(lts.initial)
        labels = {t.label for t in initial_moves}
        assert labels == {"A.push#B1.pull", "A.push#B2.pull"}
        # Each branch gets half of the exponential race.
        assert all(t.rate.rate == pytest.approx(1.0) for t in initial_moves)

    def test_and_attachment_broadcasts(self):
        lts = parse_and_generate("""
ARCHI_TYPE Broadcast(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(2.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS AND push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = <pull, _> . <work, exp(1.0)> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B1 : Cons_Type();
    B2 : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B1.pull;
    FROM A.push TO B2.pull
END
""")
        initial_moves = lts.outgoing(lts.initial)
        assert len(initial_moves) == 1
        label = initial_moves[0].label
        assert "B1.pull" in label and "B2.pull" in label
        # Broadcast requires ALL partners ready: after it, both consumers
        # work; the producer cannot push until both pulled again.
        assert initial_moves[0].rate == ExpRate(2.0)

    def test_and_attachment_blocks_until_all_ready(self):
        """If one AND partner is busy, the broadcast is disabled."""
        lts = parse_and_generate("""
ARCHI_TYPE Broadcast2(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(2.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS AND push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = <pull, _> . <work, exp(1.0)> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B1 : Cons_Type();
    B2 : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B1.pull;
    FROM A.push TO B2.pull
END
""")
        # After the broadcast both consumers are working; from that state
        # the only moves are the two work actions (no push).
        broadcast_target = lts.transitions[0].target
        labels = {t.label for t in lts.outgoing(broadcast_target)}
        assert labels == {"B1.work", "B2.work"}

    def test_unattached_output_fires_autonomously(self):
        lts = parse_and_generate("""
ARCHI_TYPE Open(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <shout, exp(1.0)> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI shout
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        assert lts.labels() == {"X.shout"}

    def test_active_input_rejected(self):
        spec = """
ARCHI_TYPE BadInput(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(3.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = <pull, exp(1.0)> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B.pull
END
"""
        with pytest.raises(SpecificationError, match="must be passive"):
            parse_and_generate(spec)


class TestPreemption:
    def test_immediate_preempts_timed(self):
        lts = parse_and_generate("""
ARCHI_TYPE Preempt(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = choice {
      <fast, inf(1, 1)> . <later, exp(1.0)> . Main(),
      <slow, exp(1.0)> . Main()
    }
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        initial_labels = {t.label for t in lts.outgoing(lts.initial)}
        assert initial_labels == {"X.fast"}

    def test_higher_priority_wins(self):
        lts = parse_and_generate("""
ARCHI_TYPE Prio(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = choice {
      <low, inf(1, 1)> . <a, exp(1.0)> . Main(),
      <high, inf(2, 1)> . <b, exp(1.0)> . Main()
    }
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        initial_labels = {t.label for t in lts.outgoing(lts.initial)}
        assert initial_labels == {"X.high"}

    def test_preemption_can_be_disabled(self):
        lts = parse_and_generate("""
ARCHI_TYPE NoPre(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = choice {
      <fast, inf(1, 1)> . Main(),
      <slow, exp(1.0)> . Main()
    }
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""", apply_preemption=False)
        initial_labels = {t.label for t in lts.outgoing(lts.initial)}
        assert initial_labels == {"X.fast", "X.slow"}


class TestDataAndRecursion:
    def test_guards_prune_moves(self, mm1k):
        lts = generate_lts(mm1k, {"capacity": 2})
        # In the initial (empty-queue) state there is no 'serve' move.
        initial_labels = {t.label for t in lts.outgoing(lts.initial)}
        assert initial_labels == {"SRC.arrive"}

    def test_unguarded_recursion_detected_dynamically(self):
        spec = """
ARCHI_TYPE Diverge(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(int n := 0; void) =
      choice {
        cond(n < 5) -> <a, _> . Main(n + 1),
        cond(n >= 5) -> <b, _> . Loop(n)
      };
    Loop(int n; void) = Main(n)
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
"""
        # Loop(n) = Main(n) is a benign forwarding call; it must NOT be
        # flagged (the static check only rejects cycles).
        lts = parse_and_generate(spec)
        assert lts.num_states == 6

    def test_recursive_call_collapses_to_same_state(self):
        """P's recursive call target is the same LTS state (true loop)."""
        lts = parse_and_generate("""
ARCHI_TYPE Loop(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <a, _> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        assert lts.num_states == 1
        assert lts.transitions[0].source == lts.transitions[0].target

    def test_environment_restricted_to_live_variables(self):
        """Dead data parameters must not blow up the state space."""
        lts = parse_and_generate("""
ARCHI_TYPE DeadVar(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(int n := 0; void) =
      <a, _> . Forget();
    Forget(void; void) = <b, _> . Main(0)
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        assert lts.num_states == 2

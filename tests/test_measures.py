"""Tests for reward measures and the MEASURE companion language."""

import numpy as np
import pytest

from repro.ctmc import (
    CTMC,
    Measure,
    RewardKind,
    evaluate_measure,
    evaluate_measures,
    measure,
    parse_measures,
    state_clause,
    state_reward_vector,
    steady_state,
    trans_clause,
)
from repro.errors import ParseError, SpecificationError


@pytest.fixture()
def small_chain():
    """Two-state chain with labelled transitions and enabled-label info."""
    ctmc = CTMC(2)
    ctmc.add_transition(0, 1, 2.0, {"S.work": 1.0})
    ctmc.add_transition(1, 0, 3.0, {"S.rest": 1.0})
    ctmc.set_enabled_labels(0, frozenset({"S.work", "S.monitor_idle"}))
    ctmc.set_enabled_labels(1, frozenset({"S.rest", "S.monitor_busy"}))
    return ctmc


class TestMeasureObjects:
    def test_state_reward_accumulates_matching_clauses(self):
        m = measure(
            "power",
            state_clause("S.monitor_idle", 2.0),
            state_clause("S.monitor_busy", 3.0),
        )
        assert m.state_reward({"S.monitor_idle"}) == 2.0
        assert m.state_reward({"S.monitor_busy"}) == 3.0
        assert m.state_reward({"other"}) == 0.0
        assert m.state_reward({"S.monitor_idle", "S.monitor_busy"}) == 5.0

    def test_trans_reward(self):
        m = measure("thr", trans_clause("S.work", 1.0))
        assert m.trans_reward("S.work") == 1.0
        assert m.trans_reward("S.work#C.take") == 1.0  # participant match
        assert m.trans_reward("S.rest") == 0.0

    def test_clause_kind_flags(self):
        m = measure("mixed", state_clause("a", 1.0), trans_clause("b", 1.0))
        assert m.has_state_clauses()
        assert m.has_trans_clauses()

    def test_empty_measure_rejected(self):
        with pytest.raises(SpecificationError):
            Measure("empty", ())

    def test_bad_name_rejected(self):
        with pytest.raises(SpecificationError):
            measure("not a name", state_clause("a", 1.0))


class TestEvaluation:
    def test_state_measure(self, small_chain):
        pi = steady_state(small_chain)  # [0.6, 0.4]
        m = measure(
            "power",
            state_clause("S.monitor_idle", 2.0),
            state_clause("S.monitor_busy", 3.0),
        )
        value = evaluate_measure(small_chain, pi, m)
        assert value == pytest.approx(0.6 * 2.0 + 0.4 * 3.0)

    def test_trans_measure_is_frequency(self, small_chain):
        pi = steady_state(small_chain)
        m = measure("work_rate", trans_clause("S.work", 1.0))
        value = evaluate_measure(small_chain, pi, m)
        assert value == pytest.approx(0.6 * 2.0)

    def test_trans_measure_with_fractional_counts(self):
        """Counts from vanishing elimination scale the frequency."""
        ctmc = CTMC(2)
        ctmc.add_transition(0, 1, 2.0, {"hop": 0.5})
        ctmc.add_transition(1, 0, 2.0, {})
        pi = steady_state(ctmc)
        m = measure("hops", trans_clause("hop", 1.0))
        assert evaluate_measure(ctmc, pi, m) == pytest.approx(0.5 * 2.0 * 0.5)

    def test_reward_vector(self, small_chain):
        m = measure("idle", state_clause("S.monitor_idle", 1.0))
        vector = state_reward_vector(small_chain, m)
        assert vector == pytest.approx([1.0, 0.0])

    def test_evaluate_measures_bundle(self, small_chain):
        pi = steady_state(small_chain)
        results = evaluate_measures(
            small_chain,
            pi,
            [
                measure("a", state_clause("S.monitor_idle", 1.0)),
                measure("b", trans_clause("S.rest", 2.0)),
            ],
        )
        assert set(results) == {"a", "b"}
        assert results["b"] == pytest.approx(0.4 * 3.0 * 2.0)

    def test_wrong_pi_length_rejected(self, small_chain):
        m = measure("a", state_clause("x", 1.0))
        with pytest.raises(SpecificationError):
            evaluate_measure(small_chain, np.ones(3) / 3, m)


class TestMeasureLanguage:
    def test_paper_syntax(self):
        measures = parse_measures("""
MEASURE throughput IS
  ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
MEASURE waiting_time IS
  ENABLED(C.monitor_waiting_client) -> STATE_REWARD(1);
MEASURE energy IS
  ENABLED(S.monitor_idle_server) -> STATE_REWARD(2)
  ENABLED(S.monitor_busy_server) -> STATE_REWARD(3)
  ENABLED(S.monitor_awaking_server) -> STATE_REWARD(2)
""")
        assert [m.name for m in measures] == [
            "throughput", "waiting_time", "energy",
        ]
        energy = measures[2]
        assert len(energy.clauses) == 3
        assert energy.clauses[0].kind is RewardKind.STATE
        assert energy.clauses[0].value == 2.0

    def test_sync_pattern_allowed(self):
        measures = parse_measures(
            "MEASURE m IS ENABLED(A.push#B.pull) -> TRANS_REWARD(0.5);"
        )
        assert measures[0].clauses[0].pattern == "A.push#B.pull"

    def test_wildcard_pattern_allowed(self):
        measures = parse_measures(
            "MEASURE m IS ENABLED(DPM.*) -> TRANS_REWARD(1);"
        )
        assert measures[0].trans_reward("DPM.send#S.recv") == 1.0

    def test_comments_ignored(self):
        measures = parse_measures("""
// power draw per state
MEASURE power IS
  ENABLED(S.monitor) -> STATE_REWARD(2)  // idle watts
""")
        assert measures[0].name == "power"

    def test_negative_reward_value(self):
        measures = parse_measures(
            "MEASURE m IS ENABLED(a) -> STATE_REWARD(-1.5);"
        )
        assert measures[0].clauses[0].value == -1.5

    def test_missing_is_rejected(self):
        with pytest.raises(ParseError):
            parse_measures("MEASURE broken ENABLED(a) -> STATE_REWARD(1)")

    def test_measure_without_clauses_rejected(self):
        with pytest.raises(ParseError):
            parse_measures("MEASURE broken IS ;")

    def test_empty_spec_rejected(self):
        with pytest.raises(ParseError):
            parse_measures("   // nothing here\n")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParseError):
            parse_measures("MEASURE m IS ENABLED(a) -> IMPULSE(1)")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ParseError):
            parse_measures("MEASURE m IS ENABLED() -> STATE_REWARD(1)")

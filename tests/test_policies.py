"""Tests for the DPM policy library (core.policies)."""

import pytest

from repro.casestudies import rpc
from repro.core import check_noninterference
from repro.core.policies import (
    Policy,
    compare_policies,
    idle_timeout_policy,
    n_idle_policy,
    never_policy,
    probabilistic_policy,
    splice_policy,
    trivial_policy,
)
from repro.core.methodology import solve_markovian_architecture
from repro.errors import SpecificationError


@pytest.fixture(scope="module")
def base_archi(rpc_family):
    return rpc_family.markovian_dpm


@pytest.fixture(scope="module")
def measures(rpc_family):
    return rpc_family.measures


class TestFactories:
    def test_all_policies_expose_the_standard_interface(self):
        for policy in (
            trivial_policy(0.2),
            idle_timeout_policy(0.2),
            n_idle_policy(3, 0.2),
            probabilistic_policy(0.5, 0.2),
            never_policy(),
        ):
            assert policy.elem_type.has_interaction("send_shutdown")
            assert policy.elem_type.has_interaction("receive_busy_notice")
            assert policy.elem_type.has_interaction("receive_idle_notice")
            assert policy.description

    def test_n_idle_requires_positive_n(self):
        with pytest.raises(SpecificationError):
            n_idle_policy(0, 1.0)

    def test_probability_bounds_checked(self):
        with pytest.raises(SpecificationError):
            probabilistic_policy(0.0, 1.0)
        with pytest.raises(SpecificationError):
            probabilistic_policy(1.5, 1.0)


class TestSplicing:
    def test_splice_replaces_dpm(self, base_archi):
        spliced = splice_policy(base_archi, trivial_policy(0.2))
        dpm = spliced.elem_types["DPM_Type"]
        assert dpm.initial_definition.name == "Trivial_DPM"
        # Everything else untouched.
        assert spliced.instances == base_archi.instances
        assert spliced.attachments == base_archi.attachments

    def test_splice_needs_a_dpm(self, rpc_family):
        with pytest.raises(SpecificationError, match="no DPM_Type"):
            splice_policy(rpc_family.markovian_nodpm, trivial_policy(0.2))

    def test_spliced_architecture_solves(self, base_archi, measures):
        spliced = splice_policy(base_archi, idle_timeout_policy(0.2))
        results = solve_markovian_architecture(spliced, measures)
        baseline = solve_markovian_architecture(base_archi, measures)
        # idle_timeout_policy(1/5ms) is exactly the built-in DPM at the
        # default 5 ms timeout.
        for name in results:
            assert results[name] == pytest.approx(baseline[name], rel=1e-9)


class TestPolicyBehaviour:
    def test_n_idle_saves_less_than_one_idle(self, base_archi, measures):
        """Needing more consecutive idle periods delays shutdowns."""
        one = solve_markovian_architecture(
            splice_policy(base_archi, n_idle_policy(1, 0.5)), measures
        )
        three = solve_markovian_architecture(
            splice_policy(base_archi, n_idle_policy(3, 0.5)), measures
        )
        assert three["energy"] > one["energy"]
        assert three["throughput"] > one["throughput"]

    def test_probabilistic_interpolates(self, base_archi, measures):
        rare = solve_markovian_architecture(
            splice_policy(base_archi, probabilistic_policy(0.1, 0.5)),
            measures,
        )
        often = solve_markovian_architecture(
            splice_policy(base_archi, probabilistic_policy(0.9, 0.5)),
            measures,
        )
        assert often["energy"] < rare["energy"]
        assert often["throughput"] < rare["throughput"]

    def test_never_policy_matches_nodpm(self, base_archi, measures, rpc_family):
        inert = solve_markovian_architecture(
            splice_policy(base_archi, never_policy()), measures
        )
        nodpm = solve_markovian_architecture(
            rpc_family.markovian_nodpm, measures
        )
        for name in inert:
            assert inert[name] == pytest.approx(nodpm[name], rel=1e-3)

    def test_compare_policies_table(self, base_archi, measures):
        results = compare_policies(
            base_archi,
            [idle_timeout_policy(0.2), never_policy()],
            measures,
        )
        assert set(results) == {"idle-timeout", "never"}
        assert results["idle-timeout"]["energy"] < results["never"]["energy"]


class TestPolicyTransparency:
    """Phase-1 screening of policies on the *functional* rpc model."""

    def _functional_with(self, policy):
        from repro.casestudies.rpc.functional import revised_architecture
        import re

        # Make the policy untimed by replacing rates with passives after
        # splicing into the untimed revised model.
        from repro.aemilia.pretty import print_architecture
        from repro.aemilia.parser import parse_architecture

        spliced = splice_policy(revised_architecture(), policy)
        text = print_architecture(spliced)
        text = re.sub(r"\b(exp|inf)\([^)]*\)", "_", text)
        return parse_architecture(text)

    def test_timeout_policy_transparent(self, rpc_family):
        archi = self._functional_with(idle_timeout_policy(1.0))
        result = check_noninterference(
            archi, rpc_family.high_patterns, rpc_family.low_patterns
        )
        assert result.holds

    def test_trivial_policy_not_transparent_on_simplified_client(self):
        """The trivial policy with the *simplified* (no-timeout) client
        reproduces the paper's interference."""
        from repro.casestudies.rpc import functional

        result = check_noninterference(
            functional.simplified_architecture(),
            functional.HIGH_PATTERNS,
            functional.LOW_PATTERNS,
        )
        assert not result.holds

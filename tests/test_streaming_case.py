"""Paper-shape tests for the streaming case study (Sect. 3.2, 4.2, 5.3)."""

import pytest

from repro.casestudies import streaming
from repro.core import IncrementalMethodology
from repro.experiments.streaming_figures import derive_streaming


@pytest.fixture(scope="module")
def methodology():
    from repro.casestudies.streaming import family

    return IncrementalMethodology(family())


def indices(results):
    series = {name: [value] for name, value in results.items()}
    derived = derive_streaming(series)
    return {name: values[0] for name, values in derived.items()}


class TestMarkovianShapes:
    """Fig. 4."""

    def test_energy_per_frame_decreases_with_awake_period(self, methodology):
        values = []
        for period in (25.0, 100.0, 400.0):
            results = methodology.solve_markovian(
                "dpm", {"awake_period": period}
            )
            values.append(indices(results)["energy_per_frame"])
        assert values[0] > values[1] > values[2]

    def test_miss_increases_quality_decreases(self, methodology):
        low = indices(
            methodology.solve_markovian("dpm", {"awake_period": 25.0})
        )
        high = indices(
            methodology.solve_markovian("dpm", {"awake_period": 400.0})
        )
        assert high["miss"] > low["miss"]
        assert high["quality"] < low["quality"]
        assert low["quality"] == pytest.approx(1.0 - low["miss"])

    def test_seventy_percent_saving_at_100ms(self, methodology):
        """Paper: ~70% energy saving around 50-100 ms awake periods."""
        dpm = indices(
            methodology.solve_markovian("dpm", {"awake_period": 100.0})
        )
        nodpm = indices(methodology.solve_markovian("nodpm"))
        saving = 1.0 - dpm["energy_per_frame"] / nodpm["energy_per_frame"]
        assert saving > 0.60

    def test_nodpm_power_is_full_awake_power(self, methodology):
        results = methodology.solve_markovian("nodpm")
        assert results["nic_power"] == pytest.approx(
            streaming.DEFAULT_PARAMETERS.power_awake
        )

    def test_frame_conservation(self, methodology):
        """The NIC cannot deliver more frames than the server produced,
        and the AP-overflow + channel-loss gap stays moderate."""
        results = methodology.solve_markovian(
            "dpm", {"awake_period": 100.0}
        )
        produced = results["frames_produced"]
        received = results["frames_received"]
        assert received <= produced
        # AP overflow (~10% at this period) + 2% channel loss.
        assert received >= produced * 0.85
        # Client fetch attempts happen at the rendering rate.
        assert results["frame_gets"] == pytest.approx(produced, rel=0.01)


class TestGeneralShapes:
    """Fig. 6 and the Sect. 5.3 findings."""

    SIM = dict(run_length=30_000.0, runs=3, warmup=1_500.0)

    def test_no_loss_and_no_miss_at_100ms(self, methodology):
        replication = methodology.simulate_general(
            "dpm", {"awake_period": 100.0}, **self.SIM
        )
        raw = {name: replication[name].mean for name in replication.estimates}
        derived = indices(raw)
        assert derived["loss"] == pytest.approx(0.0, abs=1e-6)
        assert derived["miss"] < 0.03

    def test_energy_saving_with_unaffected_quality_at_100ms(self, methodology):
        dpm_rep = methodology.simulate_general(
            "dpm", {"awake_period": 100.0}, **self.SIM
        )
        nodpm_rep = methodology.simulate_general("nodpm", **self.SIM)
        dpm = indices({n: dpm_rep[n].mean for n in dpm_rep.estimates})
        nodpm = indices({n: nodpm_rep[n].mean for n in nodpm_rep.estimates})
        saving = 1.0 - dpm["energy_per_frame"] / nodpm["energy_per_frame"]
        assert saving > 0.60
        assert dpm["quality"] > 0.95

    def test_long_awake_period_degrades_quality(self, methodology):
        """Beyond the client-buffer horizon (10 frames x 67 ms ~ 670 ms)
        the deterministic model starts missing deadlines and overflowing
        the AP buffer.  (Our general model pre-buffers the full client
        buffer and drains the whole AP buffer per wake-up, so the
        degradation onset sits at longer awake periods than the paper's
        plot — see EXPERIMENTS.md.)"""
        replication = methodology.simulate_general(
            "dpm", {"awake_period": 800.0}, **self.SIM
        )
        derived = indices(
            {n: replication[n].mean for n in replication.estimates}
        )
        assert derived["miss"] > 0.05
        assert derived["loss"] > 0.01

    def test_general_model_less_pessimistic_than_markovian(self, methodology):
        """The Markovian model overestimates misses at 100 ms (paper:
        simulation results are 'much more informative')."""
        markov = indices(
            methodology.solve_markovian("dpm", {"awake_period": 100.0})
        )
        replication = methodology.simulate_general(
            "dpm", {"awake_period": 100.0}, **self.SIM
        )
        general = indices(
            {n: replication[n].mean for n in replication.estimates}
        )
        assert general["miss"] < markov["miss"]


class TestParameters:
    def test_aironet_periods(self):
        assert streaming.AIRONET_AWAKE_PERIODS == [100.0, 200.0]

    def test_const_overrides_cover_architecture(self, streaming_family):
        overrides = streaming.DEFAULT_PARAMETERS.const_overrides()
        declared = {
            p.name for p in streaming_family.general_dpm.const_params
        }
        assert set(overrides) <= declared

    def test_power_levels_ordered(self):
        params = streaming.DEFAULT_PARAMETERS
        assert params.power_doze < params.power_awake < params.power_awaking


class TestFamily:
    def test_family_is_complete(self, streaming_family):
        assert streaming_family.functional_dpm is not None
        assert len(streaming_family.measures) == 6

    def test_functional_capacities_reduced(self):
        caps = streaming.functional.FUNCTIONAL_CAPACITIES
        assert caps["ap_capacity"] < 10
        assert caps["b_capacity"] < 10

    def test_untimed_spec_has_no_rates(self):
        spec = streaming.functional.FUNCTIONAL_SPEC
        assert "exp(" not in spec
        assert "inf(" not in spec

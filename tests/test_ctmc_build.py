"""Tests for CTMC construction: classification, vanishing elimination."""

import numpy as np
import pytest

from repro.aemilia import generate_lts, parse_architecture
from repro.aemilia.rates import (
    ExpRate,
    GeneralRate,
    ImmediateRate,
    PassiveRate,
)
from repro.ctmc import build_ctmc, classify_states
from repro.distributions import Deterministic
from repro.errors import ImmediateCycleError, MarkovianError
from repro.lts import LTS


def rated_lts(entries, initial=0):
    lts = LTS(initial)
    states = 1 + max(max(s, t) for s, _, t, _ in entries)
    for _ in range(states):
        lts.add_state()
    for source, label, target, rate in entries:
        lts.add_transition(source, label, target, rate)
    return lts


class TestClassification:
    def test_tangible_vs_vanishing(self):
        lts = rated_lts(
            [
                (0, "a", 1, ExpRate(1.0)),
                (1, "b", 0, ImmediateRate(1, 1.0)),
            ]
        )
        tangible, vanishing = classify_states(lts)
        assert tangible == [0]
        assert vanishing == [1]

    def test_mixed_state_rejected(self):
        lts = rated_lts(
            [
                (0, "a", 1, ExpRate(1.0)),
                (0, "b", 1, ImmediateRate(1, 1.0)),
            ]
        )
        with pytest.raises(MarkovianError, match="mixes immediate"):
            classify_states(lts)

    def test_deadlock_state_is_tangible(self):
        lts = rated_lts([(0, "a", 1, ExpRate(1.0))])
        tangible, vanishing = classify_states(lts)
        assert tangible == [0, 1]


class TestErrors:
    def test_passive_transition_rejected(self):
        lts = rated_lts([(0, "a", 1, PassiveRate()), (1, "b", 0, ExpRate(1.0))])
        with pytest.raises(MarkovianError, match="passive"):
            build_ctmc(lts)

    def test_general_rate_rejected(self):
        lts = rated_lts(
            [(0, "a", 1, GeneralRate(Deterministic(2.0))),
             (1, "b", 0, ExpRate(1.0))]
        )
        with pytest.raises(MarkovianError, match="generally distributed"):
            build_ctmc(lts)

    def test_missing_rate_rejected(self):
        lts = rated_lts([(0, "a", 1, None), (1, "b", 0, ExpRate(1.0))])
        with pytest.raises(MarkovianError, match="no rate"):
            build_ctmc(lts)

    def test_immediate_cycle_rejected(self):
        lts = rated_lts(
            [
                (0, "in", 1, ExpRate(1.0)),
                (1, "x", 2, ImmediateRate(1, 1.0)),
                (2, "y", 1, ImmediateRate(1, 1.0)),
            ]
        )
        with pytest.raises(ImmediateCycleError):
            build_ctmc(lts)

    def test_all_vanishing_rejected(self):
        lts = rated_lts([(0, "a", 1, ImmediateRate(1, 1.0)),
                         (1, "b", 0, ImmediateRate(1, 1.0))])
        with pytest.raises((MarkovianError, ImmediateCycleError)):
            build_ctmc(lts)


class TestElimination:
    def test_simple_chain(self):
        lts = rated_lts(
            [
                (0, "go", 1, ExpRate(2.0)),
                (1, "back", 0, ExpRate(3.0)),
            ]
        )
        ctmc = build_ctmc(lts)
        assert ctmc.num_states == 2
        assert len(ctmc.transitions) == 2

    def test_vanishing_state_removed(self):
        lts = rated_lts(
            [
                (0, "fire", 1, ExpRate(2.0)),
                (1, "branch_a", 2, ImmediateRate(1, 3.0)),
                (1, "branch_b", 3, ImmediateRate(1, 1.0)),
                (2, "back", 0, ExpRate(1.0)),
                (3, "back", 0, ExpRate(1.0)),
            ]
        )
        ctmc = build_ctmc(lts)
        assert ctmc.num_states == 3  # states 0, 2, 3
        # Probabilistic split 3:1 of the exp(2.0).
        outgoing = ctmc.outgoing(0)
        rates = sorted(t.rate for t in outgoing)
        assert rates == pytest.approx([0.5, 1.5])

    def test_label_counts_preserved_through_elimination(self):
        lts = rated_lts(
            [
                (0, "fire", 1, ExpRate(2.0)),
                (1, "hop", 2, ImmediateRate(1, 1.0)),
                (2, "back", 0, ExpRate(1.0)),
            ]
        )
        ctmc = build_ctmc(lts)
        transition = ctmc.outgoing(0)[0]
        assert transition.label_counts["fire"] == pytest.approx(1.0)
        assert transition.label_counts["hop"] == pytest.approx(1.0)

    def test_expected_counts_on_branching_paths(self):
        """Through a 3:1 immediate branch, counts are conditional."""
        lts = rated_lts(
            [
                (0, "fire", 1, ExpRate(4.0)),
                (1, "left", 2, ImmediateRate(1, 3.0)),
                (1, "right", 3, ImmediateRate(1, 1.0)),
                (2, "back", 0, ExpRate(1.0)),
                (3, "back", 0, ExpRate(1.0)),
            ]
        )
        ctmc = build_ctmc(lts)
        for transition in ctmc.outgoing(0):
            # Each branch crosses 'fire' once and its own branch label once.
            assert transition.label_counts["fire"] == pytest.approx(1.0)
            branch = [
                label for label in transition.label_counts
                if label in ("left", "right")
            ]
            assert len(branch) == 1
            assert transition.label_counts[branch[0]] == pytest.approx(1.0)

    def test_vanishing_initial_state_spreads_distribution(self):
        lts = rated_lts(
            [
                (0, "choose_a", 1, ImmediateRate(1, 1.0)),
                (0, "choose_b", 2, ImmediateRate(1, 3.0)),
                (1, "work", 2, ExpRate(1.0)),
                (2, "work", 1, ExpRate(1.0)),
            ],
        )
        ctmc = build_ctmc(lts)
        assert ctmc.num_states == 2
        assert ctmc.initial_distribution == pytest.approx([0.25, 0.75])

    def test_parallel_transitions_merge(self):
        lts = rated_lts(
            [
                (0, "x", 1, ExpRate(1.0)),
                (0, "y", 1, ExpRate(2.0)),
                (1, "back", 0, ExpRate(1.0)),
            ]
        )
        ctmc = build_ctmc(lts)
        outgoing = ctmc.outgoing(0)
        assert len(outgoing) == 1
        merged = outgoing[0]
        assert merged.rate == pytest.approx(3.0)
        # rate * count preserved per label: 1*1 and 2*1.
        assert merged.rate * merged.label_counts["x"] == pytest.approx(1.0)
        assert merged.rate * merged.label_counts["y"] == pytest.approx(2.0)

    def test_enabled_labels_recorded(self):
        lts = rated_lts(
            [
                (0, "tick", 0, ExpRate(1.0)),
                (0, "go", 1, ExpRate(1.0)),
                (1, "back", 0, ExpRate(1.0)),
            ]
        )
        ctmc = build_ctmc(lts)
        assert ctmc.enabled_labels(0) == frozenset({"tick", "go"})
        assert ctmc.enabled_labels(1) == frozenset({"back"})

    def test_self_loop_kept_but_ignored_in_generator(self):
        lts = rated_lts(
            [
                (0, "tick", 0, ExpRate(5.0)),
                (0, "go", 1, ExpRate(1.0)),
                (1, "back", 0, ExpRate(1.0)),
            ]
        )
        ctmc = build_ctmc(lts)
        q = ctmc.generator_matrix().toarray()
        assert q[0, 0] == pytest.approx(-1.0)  # self-loop cancels
        assert ctmc.exit_rate(0) == pytest.approx(1.0)


class TestFromArchitecture:
    def test_mm1k_ctmc_size(self, mm1k):
        lts = generate_lts(mm1k)
        ctmc = build_ctmc(lts)
        # Tangible states: queue level x source phase; vanishing removed.
        assert ctmc.num_states == 4  # levels 0..3 with source waiting

    def test_bscc_analysis(self, mm1k):
        lts = generate_lts(mm1k)
        ctmc = build_ctmc(lts)
        bsccs = ctmc.bottom_strongly_connected_components()
        assert len(bsccs) == 1
        assert len(bsccs[0]) == ctmc.num_states

"""Tests for the programmatic builder API (repro.aemilia.builder)."""

import pytest

from repro.aemilia import builder as b
from repro.aemilia import generate_lts
from repro.aemilia.elemtypes import Direction, Multiplicity
from repro.aemilia.expressions import DataType, Literal, Variable, binop
from repro.aemilia.rates import ExpRate
from repro.ctmc import build_ctmc, measure, steady_state, trans_clause
from repro.ctmc.measures import evaluate_measure


class TestRateHelpers:
    def test_exp_coerces_literals(self):
        spec = b.exp(2.0)
        assert spec.evaluate({}) == ExpRate(2.0)

    def test_exp_accepts_expressions(self):
        spec = b.exp(binop("/", Literal(1), Variable("mean")))
        assert spec.evaluate({"mean": 2.0}) == ExpRate(0.5)

    def test_det_shorthand(self):
        rate = b.det(3.0).evaluate({})
        assert str(rate) == "det(3)"


class TestStructureHelpers:
    def test_attach_splits_dotted_ends(self):
        attachment = b.attach("A.out_x", "B.in_y")
        assert attachment.from_instance == "A"
        assert attachment.from_interaction == "out_x"
        assert attachment.to_instance == "B"
        assert attachment.to_interaction == "in_y"

    def test_const_infers_types(self):
        assert b.const("flag", True).type is DataType.BOOL
        assert b.const("n", 3).type is DataType.INT
        assert b.const("r", 2.5).type is DataType.REAL

    def test_elem_type_multiplicities(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.choice(
                        b.prefix("take", b.passive(), b.call("Main")),
                        b.prefix("fan", b.exp(1.0), b.call("Main")),
                        b.prefix("cast", b.exp(1.0), b.call("Main")),
                    ),
                )
            ],
            inputs=["take"],
            or_outputs=["fan"],
            and_outputs=["cast"],
        )
        assert elem.interaction("take").direction is Direction.INPUT
        assert elem.interaction("fan").multiplicity is Multiplicity.OR
        assert elem.interaction("cast").multiplicity is Multiplicity.AND


class TestEndToEndBuiltModel:
    def test_build_solve_and_measure(self):
        """A complete model written only with the builder API."""
        worker = b.elem_type(
            "Worker_Type",
            [
                b.process(
                    "Rest",
                    b.prefix("start", b.exp(1.0), b.call("Work")),
                ),
                b.process(
                    "Work",
                    b.prefix("finish", b.exp(3.0), b.call("Rest")),
                ),
            ],
        )
        archi = b.archi(
            "Built", [worker], [b.instance("W", "Worker_Type")]
        )
        lts = generate_lts(archi)
        ctmc = build_ctmc(lts)
        pi = steady_state(ctmc)
        finish_rate = evaluate_measure(
            ctmc, pi, measure("f", trans_clause("W.finish", 1.0))
        )
        # Cycle time 1 + 1/3 -> rate 0.75.
        assert finish_rate == pytest.approx(0.75, rel=1e-9)

    def test_built_model_with_data_and_consts(self):
        cell = b.elem_type(
            "Cell_Type",
            [
                b.process(
                    "Cell",
                    b.choice(
                        b.cond(
                            binop("<", Variable("n"), Variable("cap")),
                            b.prefix(
                                "up",
                                b.exp(1.0),
                                b.call("Cell", binop("+", Variable("n"), 1)),
                            ),
                        ),
                        b.cond(
                            binop(">", Variable("n"), 0),
                            b.prefix(
                                "down",
                                b.exp(2.0),
                                b.call("Cell", binop("-", Variable("n"), 1)),
                            ),
                        ),
                    ),
                    formals=[b.formal("n", DataType.INT, 0)],
                )
            ],
        )
        archi = b.archi(
            "Counter",
            [cell],
            [b.instance("X", "Cell_Type", 0)],
            const_params=[b.const("cap", 4)],
        )
        assert generate_lts(archi).num_states == 5
        assert generate_lts(archi, {"cap": 9}).num_states == 10

    def test_builder_and_parser_agree(self, pingpong):
        """The builder can replicate a parsed model exactly."""
        from repro.lts import strongly_bisimilar

        ping = b.elem_type(
            "Ping_Type",
            [
                b.process(
                    "Ping",
                    b.prefix(
                        "send_ping",
                        b.passive(),
                        b.prefix("receive_pong", b.passive(), b.call("Ping")),
                    ),
                )
            ],
            inputs=["receive_pong"],
            outputs=["send_ping"],
        )
        pong = b.elem_type(
            "Pong_Type",
            [
                b.process(
                    "Pong",
                    b.prefix(
                        "receive_ping",
                        b.passive(),
                        b.prefix("send_pong", b.passive(), b.call("Pong")),
                    ),
                )
            ],
            inputs=["receive_ping"],
            outputs=["send_pong"],
        )
        built = b.archi(
            "Ping_Pong",
            [ping, pong],
            [b.instance("P", "Ping_Type"), b.instance("Q", "Pong_Type")],
            [
                b.attach("P.send_ping", "Q.receive_ping"),
                b.attach("Q.send_pong", "P.receive_pong"),
            ],
        )
        assert strongly_bisimilar(
            generate_lts(built), generate_lts(pingpong)
        )

"""End-to-end causal tracing, the run ledger, and their CLI surface.

Covers the hierarchical span model of ``repro.obs.tracing`` (context
propagation in-process and across worker processes), the well-formedness
of the span tree a traced parallel sweep produces, the Perfetto / OTLP
exports, the ``--trace-out`` / ``--ledger`` CLI flags, the
``runs list|show|diff`` commands, checkpoint-resume trace linkage, and
the design invariant that tracing never perturbs numerics
(docs/OBSERVABILITY.md).
"""

import json
import multiprocessing
import os

import pytest

from repro.experiments.cli import main
from repro.obs import tracing
from repro.obs.ledger import (
    LedgerError,
    RunLedger,
    condense_metrics,
    diff_entries,
)
from repro.obs.tracing import (
    RECORD_KIND,
    Span,
    TraceContext,
    Tracer,
    build_tree,
    export_otlp,
    export_perfetto,
    flatten_spans,
    read_spans,
    summarize_spans,
    use_tracer,
    validate_tree,
)
from repro.runtime import ParallelExecutor
from repro.runtime.trace import summarize_events


@pytest.fixture()
def tracer():
    """An in-memory tracer installed as the process tracer."""
    tracer = Tracer()
    previous = tracing.set_tracer(tracer)
    yield tracer
    tracing.set_tracer(previous)
    tracer.close()


def _sweep_argv(out, extra=()):
    return [
        "run-sweep",
        "--case",
        "rpc",
        "--parameter",
        "shutdown_timeout",
        "--values",
        "0.5,2,11",
        "--output",
        str(out),
        *extra,
    ]


class TestSpanModel:
    def test_nesting_parents_and_ids(self, tracer):
        with tracing.span("outer") as outer:
            with tracing.span("inner") as inner:
                pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["inner"]["parent"] == outer.span_id
        assert records["outer"]["parent"] is None
        assert records["inner"]["trace"] == records["outer"]["trace"]
        assert records["inner"]["span"] == inner.span_id
        assert all(r["kind"] == RECORD_KIND for r in records.values())

    def test_exception_marks_error_and_reraises(self, tracer):
        with pytest.raises(ValueError):
            with tracing.span("work"):
                raise ValueError("boom")
        [record] = tracer.records()
        assert record["status"] == tracing.STATUS_ERROR
        assert "ValueError" in record["attrs"]["error"]

    def test_attributes_and_events(self, tracer):
        with tracing.span("work", phase="solve"):
            tracing.add_attributes(method="gmres")
            tracing.add_event("fallback", reason="fit")
        [record] = tracer.records()
        assert record["attrs"]["phase"] == "solve"
        assert record["attrs"]["method"] == "gmres"
        [event] = record["events"]
        assert event["name"] == "fallback"
        assert event["attrs"]["reason"] == "fit"

    def test_record_span_manufactures_closed_span(self, tracer):
        tracing.record_span("solve", 0.25, method="direct")
        [record] = tracer.records()
        assert record["name"] == "solve"
        assert record["end"] - record["start"] == pytest.approx(
            0.25, abs=1e-6
        )
        assert record["attrs"]["method"] == "direct"

    def test_no_tracer_yields_shared_null_span(self):
        assert tracing.get_tracer() is None
        with tracing.span("ghost") as ghost:
            ghost.set_attributes(ignored=1)
            ghost.add_event("ignored")
            ghost.status = "retry"  # executor writes this unconditionally
        tracing.add_attributes(ignored=2)
        tracing.add_event("ignored")
        tracing.record_span("ghost", 0.1)

    def test_use_tracer_with_remote_context(self):
        collector = Tracer(trace_id="ab" * 16)
        ctx = TraceContext("ab" * 16, "cd" * 8)
        with use_tracer(collector, context=ctx):
            with tracing.span("worker-side"):
                pass
        [record] = collector.records()
        assert record["trace"] == "ab" * 16
        assert record["parent"] == "cd" * 8

    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = Tracer(path)
        previous = tracing.set_tracer(tracer)
        try:
            with tracing.span("a"):
                with tracing.span("b"):
                    pass
        finally:
            tracing.set_tracer(previous)
            tracer.close()
        on_disk = read_spans(path)
        assert on_disk == tracer.records()

    def test_read_spans_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = Span(
            trace_id=tracing.new_trace_id(),
            span_id=tracing.new_span_id(),
            parent_id=None,
            name="a",
            start=1.0,
            end=2.0,
        ).to_record()
        path.write_text(json.dumps(record) + "\n" + '{"kind": "sp')
        assert read_spans(str(path)) == [record]


class TestTreeTools:
    def test_validate_accepts_well_formed_tree(self, tracer):
        with tracing.span("root"):
            with tracing.span("child"):
                pass
            with tracing.span("child"):
                pass
        assert validate_tree(tracer.records()) == []

    def test_validate_rejects_orphans_and_multiple_roots(self, tracer):
        with tracing.span("a"):
            pass
        with tracing.span("b"):
            pass
        problems = validate_tree(tracer.records())
        assert any("root" in problem for problem in problems)
        orphan = Span(
            trace_id=tracer.trace_id,
            span_id=tracing.new_span_id(),
            parent_id="feedbeeffeedbeef",
            name="lost",
            start=1.0,
            end=2.0,
        )
        tracer.finish(orphan)
        problems = validate_tree(tracer.records())
        assert any("orphan" in problem for problem in problems)

    def test_validate_rejects_mixed_trace_ids(self, tracer):
        with tracing.span("root"):
            pass
        tracer.add_span(
            "alien",
            parent_id=None,
            start=1.0,
            end=2.0,
            trace_id=tracing.new_trace_id(),
        )
        problems = validate_tree(tracer.records())
        assert any("trace id" in problem for problem in problems)

    def test_flatten_feeds_legacy_summary(self, tracer):
        with tracing.span("point", phase="sweep:markovian", index=3):
            pass
        flat = flatten_spans(tracer.records())
        summary = summarize_events(flat)
        assert summary["phases"]["sweep:markovian"]["spans"] == 1

    def test_summarize_separates_self_from_cumulative(self):
        trace = tracing.new_trace_id()
        root = tracing.new_span_id()
        records = [
            {
                "kind": RECORD_KIND,
                "trace": trace,
                "span": root,
                "parent": None,
                "name": "root",
                "start": 0.0,
                "end": 10.0,
                "status": "ok",
            },
            {
                "kind": RECORD_KIND,
                "trace": trace,
                "span": tracing.new_span_id(),
                "parent": root,
                "name": "leaf",
                "start": 1.0,
                "end": 8.0,
                "status": "ok",
            },
        ]
        names = summarize_spans(records)["names"]
        assert names["root"]["cum"] == pytest.approx(10.0)
        assert names["root"]["self"] == pytest.approx(3.0)
        assert names["leaf"]["self"] == pytest.approx(7.0)


class TestExporters:
    def _records(self, tracer):
        with tracing.span("root", case="rpc"):
            with tracing.span("child"):
                tracing.add_event("tick", n=1)
        return tracer.records()

    def test_perfetto_shape(self, tracer):
        records = self._records(tracer)
        export = export_perfetto(records)
        json.dumps(export)  # must be serialisable
        assert export["displayTimeUnit"] == "ms"
        complete = [e for e in export["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in export["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == len(records)
        assert len(instants) == 1
        for event in complete:
            assert event["dur"] >= 0
            assert {"name", "ts", "pid", "tid"} <= set(event)

    def test_otlp_shape(self, tracer):
        records = self._records(tracer)
        export = export_otlp(records)
        json.dumps(export)
        spans = export["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(spans) == len(records)
        for span in spans:
            assert span["traceId"] == records[0]["trace"]
            assert span["startTimeUnixNano"].isdigit()
            assert span["endTimeUnixNano"].isdigit()


class TestTracedSweepCLI:
    def test_workers4_retry_produces_one_well_formed_tree(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                _sweep_argv(
                    tmp_path / "out.json",
                    [
                        "--workers",
                        "4",
                        "--retry",
                        "2",
                        "--trace-out",
                        str(trace),
                    ],
                )
            )
            == 0
        )
        records = read_spans(str(trace))
        assert validate_tree(records) == []
        names = {record["name"] for record in records}
        # Queue wait and execution are separate spans, and the solver
        # leafs made it back from the worker processes.
        assert {
            "run-sweep",
            "sweep:markovian",
            "point",
            "queue-wait",
            "execute",
            "solve",
        } <= names
        tree = build_tree(records)
        [root] = tree["roots"]
        assert root["name"] == "run-sweep"
        executes = [r for r in records if r["name"] == "execute"]
        assert len(executes) == 3
        assert all("worker" in record for record in executes)

    def test_trace_summary_check_passes_on_span_file(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "trace.jsonl"
        main(_sweep_argv(tmp_path / "out.json", ["--trace-out", str(trace)]))
        assert main(["trace-summary", str(trace), "--check"]) == 0
        out = capsys.readouterr().out
        assert "self [s]" in out
        assert "cum [s]" in out
        assert "span tree OK" in out

    def test_trace_summary_check_fails_on_orphan(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(_sweep_argv(tmp_path / "out.json", ["--trace-out", str(trace)]))
        with open(trace, "a") as handle:
            handle.write(
                json.dumps(
                    {
                        "kind": RECORD_KIND,
                        "trace": read_spans(str(trace))[0]["trace"],
                        "span": tracing.new_span_id(),
                        "parent": "feedbeeffeedbeef",
                        "name": "lost",
                        "start": 0.0,
                        "end": 1.0,
                        "status": "ok",
                    }
                )
                + "\n"
            )
        assert main(["trace-summary", str(trace), "--check"]) == 1

    def test_trace_summary_reads_mixed_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(
            _sweep_argv(
                tmp_path / "out.json",
                ["--trace-out", str(trace), "--trace", str(trace)],
            )
        )
        assert main(["trace-summary", str(trace)]) == 0
        out = capsys.readouterr().out
        # Both the legacy phase table (wall/cpu columns) and the span
        # table (self/cum columns) rendered.
        assert "cpu [s]" in out
        assert "self [s]" in out

    def test_perfetto_and_otlp_written_next_to_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        main(_sweep_argv(tmp_path / "out.json", ["--trace-out", str(trace)]))
        perfetto = json.loads((tmp_path / "trace.jsonl.perfetto.json").read_text())
        otlp = json.loads((tmp_path / "trace.jsonl.otlp.json").read_text())
        records = read_spans(str(trace))
        complete = [e for e in perfetto["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(records)
        spans = otlp["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(spans) == len(records)

    def test_chaos_kills_keep_tree_well_formed(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                _sweep_argv(
                    tmp_path / "out.json",
                    [
                        "--workers",
                        "2",
                        "--retry",
                        "4",
                        "--chaos",
                        "seed=7,kill=0.4",
                        "--trace-out",
                        str(trace),
                    ],
                )
            )
            == 0
        )
        records = read_spans(str(trace))
        assert validate_tree(records) == []


class TestBitIdentity:
    def test_traced_parallel_equals_untraced_serial(self, tmp_path):
        plain = tmp_path / "plain.json"
        traced = tmp_path / "traced.json"
        assert main(_sweep_argv(plain)) == 0
        assert (
            main(
                _sweep_argv(
                    traced,
                    [
                        "--workers",
                        "2",
                        "--retry",
                        "2",
                        "--trace-out",
                        str(tmp_path / "t.jsonl"),
                        "--ledger",
                        str(tmp_path / "runs.jsonl"),
                    ],
                )
            )
            == 0
        )
        assert plain.read_bytes() == traced.read_bytes()


class TestResumeLink:
    def test_resumed_sweep_links_to_journal_fingerprint(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        extra = ["--checkpoint", str(journal)]
        assert main(_sweep_argv(full, extra)) == 0
        lines = journal.read_text().splitlines()
        fingerprint = json.loads(lines[0])["fingerprint"]
        # Keep the header and the first completed point: a crash.
        journal.write_text("\n".join(lines[:2]) + "\n")
        trace = tmp_path / "trace.jsonl"
        ledger = tmp_path / "runs.jsonl"
        assert (
            main(
                _sweep_argv(
                    resumed,
                    extra
                    + [
                        "--trace-out",
                        str(trace),
                        "--ledger",
                        str(ledger),
                    ],
                )
            )
            == 0
        )
        # Bit-identical resume (the reliability invariant still holds
        # under tracing) ...
        assert full.read_bytes() == resumed.read_bytes()
        records = read_spans(str(trace))
        assert validate_tree(records) == []
        # ... the replayed point appears as a checkpoint_hit span ...
        hits = [
            r for r in records if r.get("status") == "checkpoint_hit"
        ]
        assert len(hits) == 1
        # ... the phase span links to the original run's journal ...
        linked = [
            r
            for r in records
            if r.get("attrs", {}).get("resumed_from") == fingerprint
        ]
        assert linked
        # ... and the ledger entry carries the same link.
        [entry] = RunLedger(str(ledger)).entries()
        assert entry["resumed_from"] == fingerprint
        assert entry["checkpoint"] == str(journal)


class TestRunLedger:
    def test_append_stamps_identity(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        record = ledger.append({"command": "x", "wall": 1.0})
        ledger.close()
        assert len(record["run_id"]) == 16
        [entry] = ledger.entries()
        assert entry == record

    def test_refs_last_tilde_and_prefix(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        first = ledger.append({"command": "a"})
        second = ledger.append({"command": "b"})
        ledger.close()
        assert ledger.get("last")["command"] == "b"
        assert ledger.get("last~1")["command"] == "a"
        assert ledger.get(first["run_id"][:8])["command"] == "a"
        with pytest.raises(LedgerError):
            ledger.get("last~5")
        with pytest.raises(LedgerError):
            ledger.get("doesnotexist")
        assert second["run_id"] != first["run_id"]

    def test_diff_reports_config_wall_phases_metrics(self):
        a = {
            "run_id": "a" * 16,
            "command": "run-sweep",
            "workers": 1,
            "wall": 2.0,
            "phases": {"solve": 1.5, "statespace": 0.5},
            "metrics": {"repro_solver_solves_total": 3.0},
        }
        b = {
            "run_id": "b" * 16,
            "command": "run-sweep",
            "workers": 4,
            "wall": 1.0,
            "phases": {"solve": 0.6},
            "metrics": {"repro_solver_solves_total": 3.0},
        }
        diff = diff_entries(a, b)
        assert diff["config"]["workers"] == {"a": 1, "b": 4}
        assert diff["wall"]["delta"] == pytest.approx(-1.0)
        assert diff["phases"]["solve"]["delta"] == pytest.approx(-0.9)
        assert "repro_solver_solves_total" not in diff["metrics"]

    def test_condense_metrics_sums_series(self):
        snapshot = {
            "c_total": {
                "type": "counter",
                "series": [{"value": 2.0}, {"value": 3.0}],
            },
            "h": {
                "type": "histogram",
                "series": [{"count": 4, "sum": 1.0, "buckets": {}}],
            },
        }
        condensed = condense_metrics(snapshot)
        assert condensed["c_total"] == 5.0
        assert condensed["h"] == 4.0

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(str(path))
        ledger.append({"command": "a"})
        ledger.close()
        with open(path, "a") as handle:
            handle.write('{"run_id": "torn')
        [entry] = RunLedger(str(path)).entries()
        assert entry["command"] == "a"


class TestRunsCLI:
    def _ledger_with_two_runs(self, tmp_path):
        out = tmp_path / "out.json"
        ledger = tmp_path / "runs.jsonl"
        for workers in ("1", "2"):
            assert (
                main(
                    _sweep_argv(
                        out,
                        ["--workers", workers, "--ledger", str(ledger)],
                    )
                )
                == 0
            )
        return str(ledger)

    def test_list_show_diff(self, tmp_path, capsys):
        ledger = self._ledger_with_two_runs(tmp_path)
        assert main(["runs", "--ledger", ledger, "list"]) == 0
        out = capsys.readouterr().out
        assert "run-sweep" in out
        assert main(["runs", "--ledger", ledger, "show", "last"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["case"] == "rpc"
        assert shown["phases"]  # per-phase seconds present
        assert (
            main(["runs", "--ledger", ledger, "diff", "last~1", "last"])
            == 0
        )
        out = capsys.readouterr().out
        assert "total wall" in out
        assert "workers" in out

    def test_bad_refs_exit_1(self, tmp_path):
        ledger = self._ledger_with_two_runs(tmp_path)
        assert main(["runs", "--ledger", ledger, "show", "zzz"]) == 1
        assert (
            main(["runs", "--ledger", ledger, "diff", "last", "last~9"])
            == 1
        )
        missing = str(tmp_path / "absent.jsonl")
        assert main(["runs", "--ledger", missing, "list"]) == 0


def _ledger_append_task(args):
    path, worker = args
    ledger = RunLedger(path)
    for index in range(25):
        ledger.append({"command": f"w{worker}", "index": index})
    ledger.close()
    return worker


class TestAppendAtomicity:
    def test_concurrent_ledger_appends_never_interleave(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        with multiprocessing.get_context("fork").Pool(4) as pool:
            pool.map(_ledger_append_task, [(path, w) for w in range(4)])
        entries = RunLedger(path).entries()
        assert len(entries) == 100
        # Every line parsed as exactly one complete record.
        by_worker = {}
        for entry in entries:
            by_worker.setdefault(entry["command"], []).append(
                entry["index"]
            )
        assert all(
            sorted(indices) == list(range(25))
            for indices in by_worker.values()
        )

    def test_trace_file_complete_under_chaos(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert (
            main(
                _sweep_argv(
                    tmp_path / "out.json",
                    [
                        "--workers",
                        "2",
                        "--retry",
                        "4",
                        "--chaos",
                        "seed=11,kill=0.3",
                        "--trace-out",
                        str(trace),
                    ],
                )
            )
            == 0
        )
        # Every line of the span file is complete, parseable JSON.
        for line in trace.read_text().splitlines():
            record = json.loads(line)
            assert record["kind"] == RECORD_KIND


def _snapshot_task(shared, value):
    from repro.obs import MetricRegistry

    registry = MetricRegistry()
    registry.gauge("g_rate").set(float(value))
    registry.counter("c_total").inc(1.0)
    return registry.snapshot()


class TestWorkerSnapshotMerge:
    def test_workers4_gauge_merge_deterministic(self):
        """Satellite pin: folding 4 workers' snapshots into a parent
        registry gives the same gauge whatever order the pool returns
        them in (max-merge), while counters still add."""
        from repro.obs import MetricRegistry

        executor = ParallelExecutor(workers=4)
        snapshots = list(
            executor.map(_snapshot_task, [3.0, -1.0, 7.0, 2.0])
        )
        import itertools

        merged_values = set()
        for order in itertools.permutations(range(4)):
            target = MetricRegistry()
            for position in order:
                target.merge_snapshot(snapshots[position])
            merged_values.add(target.value("g_rate"))
            assert target.value("c_total") == 4.0
        assert merged_values == {7.0}


class TestBenchObs:
    def test_committed_baseline_honours_contract(self):
        baseline = json.loads(
            open(
                os.path.join(
                    os.path.dirname(__file__), "..", "BENCH_obs.json"
                )
            ).read()
        )
        sweep = baseline["fig3_sweep"]
        assert sweep["overhead_ratio"] <= 1.05
        assert sweep["bit_identical"] is True
        assert sweep["spans"]["total"] == sum(
            sweep["spans"]["by_name"].values()
        )

"""Tests for rare-event importance splitting (repro.sim.splitting).

Covers the tentpole contracts: the degenerate configuration collapses
bit-identically to naive replication on both engines, results are
worker-count invariant and engine-independent, the estimator's interval
covers the analytic CTMC probability, weight is conserved, and the
allocator's dynamic-row machinery (slot streams) never replays a
stream.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aemilia.rates import GeneralRate
from repro.ctmc import measure, state_clause, trans_clause
from repro.distributions import Exponential
from repro.errors import SimulationError
from repro.lts import LTS
from repro.obs import MetricRegistry, render_prometheus, use_registry
from repro.sim import (
    EventStreamAllocator,
    ImportanceFunction,
    replicate,
    reward_importance,
    split_replicate,
    splitting_event_generator,
    tabulate_importance,
)


def cascade_lts(depth, up=1.0, down=2.0, out=2.0):
    """Timeout cascade: states count consecutive timeouts; ``abort``
    fires only from the deepest state."""
    lts = LTS(0)
    for _ in range(depth + 1):
        lts.add_state()
    for k in range(depth):
        lts.add_transition(
            k, "C.expire_timeout", k + 1,
            GeneralRate(Exponential(up)), "C.expire_timeout",
        )
        if k > 0:
            lts.add_transition(
                k, "C.receive_result", 0,
                GeneralRate(Exponential(down)), "C.receive_result",
            )
    lts.add_transition(
        depth, "C.abort", 0, GeneralRate(Exponential(out)), "C.abort"
    )
    return lts


def analytic_abort_rate(depth, up=1.0, down=2.0, out=2.0):
    """Exact steady-state abort rate of the cascade's CTMC."""
    states = depth + 1
    generator = np.zeros((states, states))
    for k in range(depth):
        generator[k, k + 1] += up
        generator[k, k] -= up
        if k > 0:
            generator[k, 0] += down
            generator[k, k] -= down
    generator[depth, 0] += out
    generator[depth, depth] -= out
    system = np.vstack([generator.T, np.ones(states)])
    rhs = np.zeros(states + 1)
    rhs[-1] = 1.0
    pi = np.linalg.lstsq(system, rhs, rcond=None)[0]
    return float(pi[depth] * out)


def abort_measures():
    return [
        measure("abort_rate", trans_clause("C.abort", 1.0)),
        measure("deep", state_clause("C.abort", 1.0)),
    ]


class TestImportanceFunctions:
    def test_reward_importance_targets_top_level(self):
        lts = cascade_lts(4)
        importance = reward_importance(lts, abort_measures()[0], 4)
        # Only the deepest state enables C.abort, so it is the top
        # level and the levels grade down with BFS distance.
        assert importance.level(4) == 4
        assert importance.level(0) == 0
        levels = [importance.level(state) for state in range(5)]
        assert levels == sorted(levels)

    def test_reward_importance_without_support_rejected(self):
        lts = cascade_lts(3)
        ghost = measure("ghost", trans_clause("no_such_label", 1.0))
        with pytest.raises(SimulationError):
            reward_importance(lts, ghost, 3)

    def test_tabulate_validates_range(self):
        lts = cascade_lts(2)
        with pytest.raises(SimulationError):
            tabulate_importance(lts, lambda state: 99, 2)
        importance = tabulate_importance(lts, lambda state: state, 2)
        assert importance.table == (0, 1, 2)

    def test_prebuilt_importance_must_match_model_and_levels(self):
        lts = cascade_lts(3)
        wrong_size = ImportanceFunction(3, (0, 1, 2))
        with pytest.raises(SimulationError):
            split_replicate(
                lts, abort_measures(), 10.0, levels=3, splits=2,
                segments=2, runs=2, importance=wrong_size,
            )
        wrong_levels = ImportanceFunction(2, (0, 0, 1, 2))
        with pytest.raises(SimulationError):
            split_replicate(
                lts, abort_measures(), 10.0, levels=3, splits=2,
                segments=2, runs=2, importance=wrong_levels,
            )

    def test_unknown_rare_measure_rejected(self):
        with pytest.raises(SimulationError):
            split_replicate(
                cascade_lts(2), abort_measures(), 10.0, levels=2,
                splits=2, segments=2, runs=2, rare_measure="nope",
            )


class TestParameterValidation:
    def test_bad_geometry_rejected(self):
        lts = cascade_lts(2)
        with pytest.raises(SimulationError):
            split_replicate(lts, abort_measures(), 10.0, runs=1)
        with pytest.raises(SimulationError):
            split_replicate(lts, abort_measures(), 10.0, levels=0)
        with pytest.raises(SimulationError):
            split_replicate(lts, abort_measures(), 10.0, splits=0)
        with pytest.raises(SimulationError):
            split_replicate(lts, abort_measures(), 10.0, segments=0)
        with pytest.raises(SimulationError):
            split_replicate(lts, abort_measures(), 0.0)


class TestDegenerateCollapse:
    """splits=1 must be *bit-identical* to naive replication — the
    differential anchor tying the splitting layer to the engines."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_one_split_equals_naive_replication(self, engine):
        lts = cascade_lts(3)
        naive = replicate(
            lts, abort_measures(), 400.0, runs=6, warmup=20.0,
            seed=97, engine="fast",
        )
        split = split_replicate(
            lts, abort_measures(), 400.0, levels=3, splits=1,
            segments=17, runs=6, warmup=20.0, seed=97, engine=engine,
        )
        for name in ("abort_rate", "deep"):
            assert split.samples[name] == naive.samples[name]
            assert split[name].mean == naive[name].mean
        assert split.clones == 0
        assert split.merges == 0
        assert split.peak_trajectories == 1


class TestDeterminism:
    def _run(self, **kwargs):
        settings = dict(
            levels=3, splits=3, segments=25, runs=4, warmup=5.0,
            seed=41, engine="fast",
        )
        settings.update(kwargs)
        return split_replicate(
            cascade_lts(3), abort_measures(), 50.0, **settings
        )

    def test_worker_count_invariant(self):
        serial = self._run(workers=1)
        parallel = self._run(workers=3)
        assert serial.samples == parallel.samples
        assert serial.occupancy == parallel.occupancy
        assert serial.events == parallel.events

    def test_engines_bit_identical(self):
        fast = self._run()
        reference = self._run(engine="reference")
        assert fast.samples == reference.samples
        assert fast.occupancy == reference.occupancy
        assert fast.clones == reference.clones
        assert fast.merges == reference.merges

    def test_seed_reproducible_and_sensitive(self):
        first = self._run()
        again = self._run()
        other = self._run(seed=42)
        assert first.samples == again.samples
        assert first.samples != other.samples


class TestEstimator:
    def test_interval_covers_analytic_probability(self):
        # Acceptance: the splitting estimate of the cascade's rare
        # probability (P[deep] ~ 0.0123) must cover the direct CTMC
        # solve within its 95% interval.
        truth = analytic_abort_rate(3) / 2.0  # pi_deep = rate / out
        result = split_replicate(
            cascade_lts(3), abort_measures(), 100.0, levels=3,
            splits=4, segments=200, runs=30, warmup=5.0, seed=7,
            confidence=0.95, engine="fast", workers=4,
        )
        rare = result.rare["deep"]
        assert rare.low <= truth <= rare.high
        assert rare.mean == pytest.approx(truth, rel=0.5)

    def test_rare_probability_matches_top_occupancy(self):
        result = split_replicate(
            cascade_lts(3), abort_measures(), 50.0, levels=3, splits=3,
            segments=25, runs=4, warmup=5.0, seed=41,
        )
        top = result.occupancy[result.levels]
        rare = result.rare_probability()
        assert rare.mean == pytest.approx(float(np.mean(top)))

    def test_level_conditionals_telescope(self):
        result = split_replicate(
            cascade_lts(3), abort_measures(), 50.0, levels=3, splits=3,
            segments=25, runs=4, warmup=5.0, seed=41,
        )
        conditionals = result.level_conditionals
        assert len(conditionals) == result.levels
        product = float(np.prod(conditionals))
        assert product == pytest.approx(
            result.rare_probability().mean, rel=1e-9
        )


@st.composite
def cascade_configs(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    up = draw(st.floats(min_value=0.3, max_value=2.0))
    down = draw(st.floats(min_value=0.5, max_value=3.0))
    splits = draw(st.integers(min_value=1, max_value=4))
    segments = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return depth, up, down, splits, segments, seed


class TestInvariantProperties:
    @settings(max_examples=15, deadline=None)
    @given(cascade_configs())
    def test_weight_conservation_and_monotone_occupancy(self, config):
        depth, up, down, splits, segments, seed = config
        result = split_replicate(
            cascade_lts(depth, up=up, down=down),
            abort_measures(), 30.0, levels=depth, splits=splits,
            segments=segments, runs=2, seed=seed,
        )
        # Total weight 1 per tree: base occupancy is exactly the
        # weight average over boundaries.
        for sample in result.occupancy[0]:
            assert sample == pytest.approx(1.0, abs=1e-9)
        # P(level >= l) is non-increasing in l, and every conditional
        # is a probability.
        for run in range(2):
            per_level = [
                result.occupancy[level][run]
                for level in range(depth + 1)
            ]
            for higher, lower in zip(per_level, per_level[1:]):
                assert lower <= higher + 1e-9
        for conditional in result.level_conditionals:
            assert 0.0 <= conditional <= 1.0 + 1e-9
        for sample in result.samples["abort_rate"]:
            assert sample >= 0.0


class TestAllocatorDynamicRows:
    """Slot-stream invariants the splitting layer depends on."""

    def _drain(self, allocator, row, name, count):
        view = allocator.run_view(row)
        dist = Exponential(1.0)
        return [view.duration(name, dist) for _ in range(count)]

    def test_streams_cross_block_boundaries_byte_identically(self):
        # Satellite: a stream drained one draw at a time across
        # several block refills must match a second allocator drained
        # in one sweep — the cursor/refill logic cannot skew bytes.
        one = EventStreamAllocator(5, [(2, 7)])
        two = EventStreamAllocator(5, [(2, 7)])
        block = one.block
        count = 2 * block + block // 2 + 3
        first = self._drain(one, 0, "C.expire_timeout", count)
        interleaved = []
        other_view = two.run_view(0)
        dist = Exponential(1.0)
        for index in range(count):
            interleaved.append(
                two.run_view(0).duration("C.expire_timeout", dist)
            )
            if index % 3 == 0:
                other_view.duration("C.receive_result", dist)
        assert first == interleaved

    def test_restart_at_exact_block_boundary_neither_skips_nor_redraws(self):
        # Satellite bugfix pin: a trajectory restarted when the stream
        # cursor sits exactly at the block edge (cursor == block, the
        # refill trigger) must continue with the sample an
        # uninterrupted run would have drawn next.
        paused = EventStreamAllocator(5, [(2, 7)])
        whole = EventStreamAllocator(5, [(2, 7)])
        block = paused.block
        prefix = self._drain(paused, 0, "C.abort", block)
        sweep = self._drain(whole, 0, "C.abort", block + 5)
        assert prefix == sweep[:block]
        # ...checkpoint/restart happens here, cursor == block...
        continuation = self._drain(paused, 0, "C.abort", 5)
        assert continuation == sweep[block:]

    def test_engine_segmented_restart_matches_uninterrupted_run(self):
        # Engine-level byte identity: running one trajectory in two
        # segments — restarting from (final_state, final_clocks) on
        # the same allocator — reproduces the uninterrupted run.
        from repro.sim import FastSimulator

        lts = cascade_lts(3)
        simulator = FastSimulator(lts, abort_measures())
        whole = simulator.run_many(
            100.0, allocator=EventStreamAllocator(9, [0])
        )[0]
        allocator = EventStreamAllocator(9, [0])
        first = simulator.run_many(50.0, allocator=allocator)[0]
        second = simulator.run_many(
            50.0,
            allocator=allocator,
            start_states=[first.final_state],
            start_clocks=[first.final_clocks],
        )[0]
        assert second.final_state == whole.final_state
        assert (
            first.events_fired + second.events_fired
            == whole.events_fired
        )
        for name in ("abort_rate", "deep"):
            stitched = (
                first.measures[name] + second.measures[name]
            ) / 2.0
            assert stitched == pytest.approx(
                whole.measures[name], rel=1e-12, abs=1e-15
            )

    def test_slot_key_defines_the_stream(self):
        # The same (run, slot) key yields the same stream wherever the
        # row physically lives.
        tall = EventStreamAllocator(5, [(1, 0), (1, 5), (1, 9)])
        short = EventStreamAllocator(5, [(1, 9)])
        assert self._drain(tall, 2, "C.abort", 10) == self._drain(
            short, 0, "C.abort", 10
        )

    def test_add_row_opens_a_fresh_slot_stream(self):
        allocator = EventStreamAllocator(5, [(1, 0)])
        self._drain(allocator, 0, "C.abort", 7)
        row = allocator.add_row((1, 3))
        fresh = EventStreamAllocator(5, [(1, 3)])
        assert self._drain(allocator, row, "C.abort", 10) == self._drain(
            fresh, 0, "C.abort", 10
        )

    def test_truncate_then_new_key_never_replays(self):
        allocator = EventStreamAllocator(5, [(1, 0)])
        first_row = allocator.add_row((1, 1))
        burned = self._drain(allocator, first_row, "C.abort", 5)
        allocator.truncate_rows(1)
        second_row = allocator.add_row((1, 2))
        assert second_row == first_row  # physical row reused...
        fresh = self._drain(allocator, second_row, "C.abort", 5)
        assert fresh != burned  # ...but the stream is new
        # And the surviving row's stream is untouched by the churn.
        quiet = EventStreamAllocator(5, [(1, 0)])
        assert self._drain(allocator, 0, "C.abort", 8) == self._drain(
            quiet, 0, "C.abort", 8
        )

    def test_rebind_row_restarts_the_stream_under_the_new_key(self):
        allocator = EventStreamAllocator(5, [(1, 0), (1, 1)])
        self._drain(allocator, 1, "C.abort", 5)
        allocator.rebind_row(1, (1, 8))
        fresh = EventStreamAllocator(5, [(1, 8)])
        assert self._drain(allocator, 1, "C.abort", 6) == self._drain(
            fresh, 0, "C.abort", 6
        )

    def test_composite_keys_dispatch_to_splitting_namespace(self):
        allocator = EventStreamAllocator(5, [(4, 2)])
        drawn = self._drain(allocator, 0, "C.abort", 4)
        generator = splitting_event_generator(5, 4, 2, "C.abort")
        expected = [
            Exponential(1.0).sample(generator) for _ in range(4)
        ]
        assert drawn == expected


class TestMetricsEmission:
    def test_splitting_counters_emitted(self):
        registry = MetricRegistry()
        with use_registry(registry):
            split_replicate(
                cascade_lts(2), abort_measures(), 30.0, levels=2,
                splits=3, segments=10, runs=2, seed=3,
            )
        rendered = render_prometheus(registry)
        assert "repro_splitting_trees_total 2" in rendered
        assert "repro_splitting_events_total" in rendered

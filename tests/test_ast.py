"""Tests for behaviour-term construction and static properties."""

import pytest

from repro.aemilia import builder as b
from repro.aemilia.ast import (
    ActionPrefix,
    Choice,
    Formal,
    Guarded,
    ProcessCall,
    ProcessDef,
    Stop,
)
from repro.aemilia.expressions import DataType, Literal, Variable, binop
from repro.errors import SpecificationError, TypeCheckError


class TestConstruction:
    def test_prefix(self):
        term = b.prefix("go", b.passive(), b.stop())
        assert isinstance(term, ActionPrefix)
        assert term.action == "go"

    def test_invalid_action_name(self):
        with pytest.raises(SpecificationError):
            b.prefix("not an ident", b.passive(), b.stop())

    def test_choice_requires_two_alternatives(self):
        with pytest.raises(SpecificationError):
            Choice((b.prefix("a", b.passive(), b.stop()),))

    def test_choice_alternatives_must_be_action_guarded(self):
        with pytest.raises(SpecificationError, match="action guarded"):
            b.choice(
                b.prefix("a", b.passive(), b.stop()),
                b.call("P"),
            )

    def test_guarded_alternative_is_action_guarded(self):
        term = b.choice(
            b.prefix("a", b.passive(), b.stop()),
            b.cond(
                binop("<", Variable("n"), 3),
                b.prefix("b", b.passive(), b.stop()),
            ),
        )
        assert isinstance(term, Choice)

    def test_nested_choice_is_acceptable_alternative(self):
        inner = b.choice(
            b.prefix("a", b.passive(), b.stop()),
            b.prefix("b", b.passive(), b.stop()),
        )
        outer = b.choice(inner, b.prefix("c", b.passive(), b.stop()))
        assert len(outer.alternatives) == 2

    def test_process_call_coerces_arguments(self):
        call = b.call("P", 3)
        assert call.args == (Literal(3),)

    def test_invalid_process_name(self):
        with pytest.raises(SpecificationError):
            ProcessCall("123bad")


class TestStaticProperties:
    def test_free_variables_of_prefix(self):
        term = b.prefix("a", b.exp(Variable("r")), b.call("P", Variable("n")))
        assert term.free_variables() == frozenset({"r", "n"})

    def test_free_variables_of_guard(self):
        term = b.cond(binop(">", Variable("n"), 0), b.stop())
        assert term.free_variables() == frozenset({"n"})

    def test_called_processes(self):
        term = b.choice(
            b.prefix("a", b.passive(), b.call("P")),
            b.prefix("b", b.passive(), b.call("Q")),
        )
        assert term.called_processes() == frozenset({"P", "Q"})

    def test_unguarded_calls_stop_at_prefix(self):
        term = b.prefix("a", b.passive(), b.call("P"))
        assert term.unguarded_calls() == frozenset()

    def test_unguarded_calls_through_guard(self):
        term = Guarded(Literal(True), b.call("P"))
        assert term.unguarded_calls() == frozenset({"P"})

    def test_stop_properties(self):
        assert Stop().free_variables() == frozenset()
        assert Stop().called_processes() == frozenset()

    def test_str_round_trips_structure(self):
        term = b.choice(
            b.prefix("a", b.passive(), b.stop()),
            b.prefix("b", b.passive(), b.call("P")),
        )
        rendered = str(term)
        assert "choice" in rendered and "<a, _>" in rendered


class TestProcessDef:
    def test_duplicate_formals_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate parameter"):
            ProcessDef(
                "P",
                (
                    Formal("n", DataType.INT),
                    Formal("n", DataType.INT),
                ),
                Stop(),
            )

    def test_check_closed_accepts_formals_and_constants(self):
        definition = b.process(
            "P",
            b.prefix("a", b.exp(Variable("rate")), b.call("P", Variable("n"))),
            formals=[b.formal("n")],
        )
        definition.check_closed(frozenset({"rate"}))

    def test_check_closed_rejects_unbound(self):
        definition = b.process(
            "P",
            b.prefix("a", b.exp(Variable("rate")), b.stop()),
        )
        with pytest.raises(TypeCheckError, match="rate"):
            definition.check_closed(frozenset())

    def test_invalid_def_name(self):
        with pytest.raises(SpecificationError):
            ProcessDef("bad name", (), Stop())


class TestHashability:
    def test_terms_are_hashable_and_structural(self):
        first = b.prefix("a", b.passive(), b.call("P"))
        second = b.prefix("a", b.passive(), b.call("P"))
        assert first == second
        assert hash(first) == hash(second)
        assert first != b.prefix("b", b.passive(), b.call("P"))

"""Differential tests: vectorized kernel vs pure-Python reference.

Two distinct claims, with distinct oracles (docs/SIMULATION.md):

* **Bit-identical under shared streams.**  When both engines draw from
  the same :class:`~repro.sim.streams.EventStreamAllocator` substreams,
  every trajectory — measures, event counts, final states, residual
  clocks — must match to the last bit, on both case studies, across
  distribution families (the native det+normal mix, the exponential
  plug-in, injected deterministic/normal workloads, trace replay) and
  across worker counts.
* **Statistically equivalent otherwise.**  Against the historical
  single-rng reference discipline the fast engine is a different (but
  equally valid) estimator: confidence intervals must overlap.

Plus the common-random-numbers claim the paired layer exists for: at
equal event budget, CRN-paired DPM-on/DPM-off deltas get strictly
narrower intervals than independent pairing.
"""

import numpy as np
import pytest

from repro.aemilia.semantics import generate_lts
from repro.core.validation import exponential_plugin
from repro.distributions import Deterministic, Normal
from repro.sim import (
    EventStreamAllocator,
    FastSimulator,
    Simulator,
    paired_allocators,
    replicate,
    replicate_paired,
)
from repro.workload import TraceReplay, apply_workload, parse_generator_spec

SEED = 20040628
RUNS = 6
RUN_LENGTH = 500.0
WARMUP = 50.0

CASES = ("rpc", "streaming")

#: Distribution families exercised at the case studies' workload hooks
#: ("native" leaves the specification's det+normal mix untouched; "exp"
#: is the Sect. 5.1 exponential plug-in on the whole model).
DISTRIBUTIONS = ("native", "exp", "det", "normal", "replay")


def _replay_distribution():
    trace = parse_generator_spec("poisson:0.12").generate(300, seed=7)
    return TraceReplay(trace, "cycle")


def _model(families, case, dist):
    """The general DPM model of *case* under distribution family *dist*."""
    family = families[case]
    lts = generate_lts(family.general_dpm, None, 200_000)
    if dist == "native":
        return family, lts
    if dist == "exp":
        return family, exponential_plugin(lts)
    hook = family.workload_pattern
    workload = {
        "det": Deterministic(8.0),
        "normal": Normal(8.0, 0.4),
        "replay": _replay_distribution(),
    }[dist]
    return family, apply_workload(lts, hook, workload)


@pytest.fixture
def families(rpc_family, streaming_family):
    return {"rpc": rpc_family, "streaming": streaming_family}


@pytest.mark.parametrize("dist", DISTRIBUTIONS)
@pytest.mark.parametrize("case", CASES)
class TestBitIdenticalTrajectories:
    def test_fast_matches_reference_under_shared_streams(
        self, case, dist, families
    ):
        """Same allocator parameters => same trajectories, bit for bit."""
        family, lts = _model(families, case, dist)
        fast = FastSimulator(lts, family.measures)
        batch = fast.run_many(
            RUN_LENGTH,
            warmup=WARMUP,
            allocator=EventStreamAllocator(SEED, range(RUNS)),
        )
        reference = Simulator(lts, family.measures)
        mirror = EventStreamAllocator(SEED, range(RUNS))
        for row, fast_result in enumerate(batch):
            ref_result = reference.run(
                RUN_LENGTH,
                None,
                warmup=WARMUP,
                streams=mirror.run_view(row),
            )
            # ==, not approx: the kernel replicates the reference's
            # float operation order, not just its distributions.
            assert fast_result.measures == ref_result.measures
            assert fast_result.events_fired == ref_result.events_fired
            assert fast_result.final_state == ref_result.final_state
            assert fast_result.deadlocked == ref_result.deadlocked
            assert fast_result.final_clocks == ref_result.final_clocks

    @pytest.mark.parametrize("workers", [1, 4])
    def test_replicate_fast_engine_worker_invariant(
        self, case, dist, workers, families
    ):
        """engine='fast' means/half-widths never depend on --workers."""
        family, lts = _model(families, case, dist)
        serial = replicate(
            lts,
            family.measures,
            RUN_LENGTH,
            runs=RUNS,
            warmup=WARMUP,
            seed=SEED,
            engine="fast",
        )
        chunked = replicate(
            lts,
            family.measures,
            RUN_LENGTH,
            runs=RUNS,
            warmup=WARMUP,
            seed=SEED,
            workers=workers,
            engine="fast",
        )
        assert serial.estimates == chunked.estimates
        assert serial.samples == chunked.samples


@pytest.mark.parametrize("case", CASES)
class TestStatisticalEquivalence:
    def test_fast_and_reference_intervals_overlap(self, case, families):
        """The engines follow different RNG disciplines — the historical
        reference uses one generator per run, the fast engine one
        substream per event type — so their estimates differ in the
        bits but must agree as estimators: every measure's intervals
        overlap at matched budgets."""
        family, lts = _model(families, case, "native")
        settings = dict(
            runs=10, warmup=200.0, seed=SEED, confidence=0.95
        )
        reference = replicate(
            lts, family.measures, 2_000.0, engine="reference", **settings
        )
        fast = replicate(
            lts, family.measures, 2_000.0, engine="fast", **settings
        )
        for measure in family.measure_names():
            ref_est = reference[measure]
            fast_est = fast[measure]
            assert ref_est.low <= fast_est.high and (
                fast_est.low <= ref_est.high
            ), f"{case}/{measure}: {ref_est} vs {fast_est}"


class TestCommonRandomNumbers:
    def test_paired_allocators_share_streams(self):
        first, second = paired_allocators(SEED, range(3))
        dist = Normal(1.0, 0.2)
        rows = np.arange(3)
        np.testing.assert_array_equal(
            first.take("E.event", dist, rows),
            second.take("E.event", dist, rows),
        )

    def test_crn_narrows_delta_intervals(self, rpc_family):
        """CRN pairing beats independent pairing at equal event budget.

        shutdown_timeout=15.0 is a genuine fig. 3 sweep point where the
        DPM-on and DPM-off trajectories stay aligned (the policy rarely
        engages), which is exactly the regime CRN exploits: every
        measure's paired-delta interval must be strictly narrower than
        the independent-pairing one.
        """
        family = rpc_family
        lts_dpm = generate_lts(
            family.general_dpm, {"shutdown_timeout": 15.0}, 200_000
        )
        lts_nodpm = generate_lts(family.general_nodpm, None, 200_000)
        settings = dict(
            runs=16, warmup=100.0, seed=SEED
        )
        paired = replicate_paired(
            lts_dpm, lts_nodpm, family.measures, 1_500.0,
            crn=True, **settings,
        )
        independent = replicate_paired(
            lts_dpm, lts_nodpm, family.measures, 1_500.0,
            crn=False, **settings,
        )
        assert paired.crn and not independent.crn
        for measure in family.measure_names():
            assert (
                paired.delta[measure].half_width
                < independent.delta[measure].half_width
            ), (
                f"{measure}: paired {paired.delta[measure]} not narrower "
                f"than independent {independent.delta[measure]}"
            )

"""Simulation of OR/AND attachments and weighted passive branching.

The CTMC path of these constructs is covered in test_semantics /
test_ctmc_build; these tests drive the *simulator* through the same
synchronisation structures and check the branch statistics and broadcast
semantics against the analytic expectations.
"""

import pytest

from repro.aemilia import generate_lts, parse_architecture
from repro.ctmc import (
    build_ctmc,
    evaluate_measure,
    measure,
    steady_state,
    trans_clause,
)
from repro.sim import make_generator, simulate


def or_model(weight_left=3.0, weight_right=1.0):
    return parse_architecture(f"""
ARCHI_TYPE Fanout(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(2.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS OR push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = <pull, _(0, {weight_left})> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ELEM_TYPE Cons2_Type(void)
  BEHAVIOR
    C(void; void) = <pull, _(0, {weight_right})> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B1 : Cons_Type();
    B2 : Cons2_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B1.pull;
    FROM A.push TO B2.pull
END
""")


BROADCAST_SPEC = """
ARCHI_TYPE Cast(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Prod_Type(void)
  BEHAVIOR
    P(void; void) = <push, exp(2.0)> . P()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS AND push
ELEM_TYPE Cons_Type(void)
  BEHAVIOR
    C(void; void) = <pull, _> . <work, exp(5.0)> . C()
  INPUT_INTERACTIONS UNI pull
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    A : Prod_Type();
    B1 : Cons_Type();
    B2 : Cons_Type()
  ARCHI_ATTACHMENTS
    FROM A.push TO B1.pull;
    FROM A.push TO B2.pull
END
"""


class TestOrAttachmentSimulation:
    def test_branch_statistics_follow_weights(self):
        lts = generate_lts(or_model(3.0, 1.0))
        left = measure("left", trans_clause("B1.pull", 1.0))
        right = measure("right", trans_clause("B2.pull", 1.0))
        result = simulate(
            lts, [left, right], 20_000.0, make_generator(23)
        )
        ratio = result.measures["left"] / result.measures["right"]
        assert ratio == pytest.approx(3.0, rel=0.08)

    def test_total_rate_matches_ctmc(self):
        lts = generate_lts(or_model())
        pushes = measure("pushes", trans_clause("A.push", 1.0))
        ctmc = build_ctmc(lts)
        analytic = evaluate_measure(ctmc, steady_state(ctmc), pushes)
        result = simulate(lts, [pushes], 20_000.0, make_generator(29))
        assert result.measures["pushes"] == pytest.approx(
            analytic, rel=0.03
        )
        assert analytic == pytest.approx(2.0, rel=1e-9)


class TestAndAttachmentSimulation:
    def test_broadcast_delivers_to_all_partners(self):
        lts = generate_lts(parse_architecture(BROADCAST_SPEC))
        pushes = measure("pushes", trans_clause("A.push", 1.0))
        work1 = measure("w1", trans_clause("B1.work", 1.0))
        work2 = measure("w2", trans_clause("B2.work", 1.0))
        result = simulate(
            lts, [pushes, work1, work2], 20_000.0, make_generator(31)
        )
        # Every broadcast triggers exactly one work unit on each consumer.
        assert result.measures["w1"] == pytest.approx(
            result.measures["pushes"], rel=0.01
        )
        assert result.measures["w2"] == pytest.approx(
            result.measures["pushes"], rel=0.01
        )

    def test_broadcast_blocks_until_both_ready(self):
        """Effective cycle: exp(2) broadcast then both exp(5) works in
        parallel; the push rate must match the CTMC exactly."""
        lts = generate_lts(parse_architecture(BROADCAST_SPEC))
        pushes = measure("pushes", trans_clause("A.push", 1.0))
        ctmc = build_ctmc(lts)
        analytic = evaluate_measure(ctmc, steady_state(ctmc), pushes)
        result = simulate(lts, [pushes], 20_000.0, make_generator(37))
        assert result.measures["pushes"] == pytest.approx(
            analytic, rel=0.03
        )

"""Tests for distinguishing-formula generation.

The central property: whenever two states are NOT weakly bisimilar, the
generated formula must hold at the first and fail at the second under the
weak satisfaction relation.  Hypothesis hammers this on random systems.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.lts import (
    TAU,
    build_lts,
    check_weak_equivalence,
    disjoint_union,
    distinguishing_formula,
    verify_distinguishing,
    weak_bisimulation,
)
from repro.lts.hml import DiamondWeak, Not


class TestKnownExamples:
    def test_coffee_machines_formula(self, coffee_machines):
        deterministic, nondeterministic = coffee_machines
        check = check_weak_equivalence(deterministic, nondeterministic)
        assert not check.equivalent
        formula = distinguishing_formula(
            check.result, check.initial_first, check.initial_second
        )
        assert formula is not None
        assert verify_distinguishing(
            check.result, formula, check.initial_first, check.initial_second
        )

    def test_equivalent_states_yield_none(self):
        first = build_lts(2, [(0, "a", 1)])
        second = build_lts(3, [(0, "a", 1), (1, TAU, 2)])
        check = check_weak_equivalence(first, second)
        assert check.equivalent
        assert (
            distinguishing_formula(
                check.result, check.initial_first, check.initial_second
            )
            is None
        )

    def test_deadlock_vs_live_needs_negation_or_diamond(self):
        live = build_lts(2, [(0, "a", 1)])
        dead = build_lts(1, [])
        check = check_weak_equivalence(live, dead)
        formula = distinguishing_formula(
            check.result, check.initial_first, check.initial_second
        )
        # <<a>>TRUE distinguishes the live side.
        assert isinstance(formula, DiamondWeak)
        assert formula.label == "a"

    def test_formula_from_the_other_side_is_negated(self):
        live = build_lts(2, [(0, "a", 1)])
        dead = build_lts(1, [])
        check = check_weak_equivalence(dead, live)
        formula = distinguishing_formula(
            check.result, check.initial_first, check.initial_second
        )
        assert isinstance(formula, Not)
        assert verify_distinguishing(
            check.result, formula, check.initial_first, check.initial_second
        )

    def test_error_on_bisimilar_pair(self):
        lts = build_lts(2, [(0, "a", 1), (1, "a", 0)])
        result = weak_bisimulation(lts)
        # States 0 and 1 here ARE equivalent (same behaviour).
        assert result.equivalent(0, 1)
        assert distinguishing_formula(result, 0, 1) is None

    def test_paper_formula_reproduction(self):
        """The Sect. 3.1 rpc diagnostic, end to end."""
        from repro.casestudies.rpc import functional
        from repro.core import check_noninterference

        result = check_noninterference(
            functional.simplified_architecture(),
            functional.HIGH_PATTERNS,
            functional.LOW_PATTERNS,
        )
        assert not result.holds
        text = result.formula.render()
        # The paper's exact diagnostic structure:
        assert "LABEL(C.send_rpc_packet#RCS.get_packet)" in text
        assert "LABEL(RSC.deliver_packet#C.receive_result_packet)" in text
        assert "NOT(" in text


@st.composite
def random_weak_lts(draw, max_states=5):
    n = draw(st.integers(1, max_states))
    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from(["a", "b", TAU]),
                st.integers(0, n - 1),
            ),
            max_size=10,
        )
    )
    return build_lts(n, transitions)


@settings(max_examples=80, deadline=None)
@given(random_weak_lts(), random_weak_lts())
def test_formula_always_verifies(first, second):
    """For every non-equivalent random pair, the formula separates them."""
    check = check_weak_equivalence(first, second)
    formula = distinguishing_formula(
        check.result, check.initial_first, check.initial_second
    )
    if check.equivalent:
        assert formula is None
    else:
        assert formula is not None
        assert verify_distinguishing(
            check.result, formula, check.initial_first, check.initial_second
        )


@settings(max_examples=40, deadline=None)
@given(random_weak_lts())
def test_all_separated_pairs_get_formulas(lts):
    """Within one system, every non-equivalent state pair is separable."""
    result = weak_bisimulation(lts)
    states = list(lts.states())
    for s in states[:4]:
        for t in states[:4]:
            formula = distinguishing_formula(result, s, t)
            if result.equivalent(s, t):
                assert formula is None
            else:
                assert verify_distinguishing(result, formula, s, t)

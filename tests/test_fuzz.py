"""Robustness tests: malformed input must fail with *library* errors.

A production front-end never leaks internal exceptions (KeyError,
RecursionError, ...) on bad input — every failure surfaces as a
:class:`~repro.errors.ReproError` subclass with a readable message.
Hypothesis throws token soup, truncations and mutations at the parser and
the measure language to enforce that.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aemilia import parse_architecture
from repro.casestudies.rpc.functional import REVISED_SPEC
from repro.ctmc.measure_lang import parse_measures
from repro.errors import ReproError

_TOKENS = [
    "ARCHI_TYPE", "ARCHI_ELEM_TYPES", "ELEM_TYPE", "BEHAVIOR",
    "INPUT_INTERACTIONS", "OUTPUT_INTERACTIONS", "ARCHI_TOPOLOGY",
    "ARCHI_ELEM_INSTANCES", "ARCHI_ATTACHMENTS", "FROM", "TO", "END",
    "UNI", "choice", "cond", "stop", "void", "const", "int", "real",
    "exp", "inf", "det", "normal", "Server", "x", "n", "42", "3.5",
    "(", ")", "{", "}", "<", ">", ",", ";", ".", ":=", "->", ":", "_",
    "+", "-", "*", "/", "=",
]


@settings(max_examples=150, deadline=None)
@given(st.lists(st.sampled_from(_TOKENS), max_size=40))
def test_parser_never_leaks_internal_errors(tokens):
    source = " ".join(tokens)
    try:
        parse_architecture(source)
    except ReproError:
        pass  # the only acceptable failure mode


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=80))
def test_parser_survives_arbitrary_text(text):
    try:
        parse_architecture(text)
    except ReproError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.integers(0, len(REVISED_SPEC) - 1), st.integers(1, 40))
def test_parser_survives_truncated_real_specs(start, length):
    """Cutting a window out of a real spec must fail cleanly (or parse,
    for the degenerate no-op cuts)."""
    mutated = REVISED_SPEC[:start] + REVISED_SPEC[start + length:]
    try:
        parse_architecture(mutated)
    except ReproError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=60))
def test_measure_language_survives_arbitrary_text(text):
    try:
        parse_measures(text)
    except ReproError:
        pass


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(
        ["MEASURE", "IS", "ENABLED", "STATE_REWARD", "TRANS_REWARD",
         "->", "(", ")", ";", "m", "S.act", "1", "2.5"]
    ).flatmap(lambda first: st.lists(
        st.sampled_from(
            ["MEASURE", "IS", "ENABLED", "STATE_REWARD", "TRANS_REWARD",
             "->", "(", ")", ";", "m", "S.act", "1", "2.5"]
        ),
        max_size=25,
    ).map(lambda rest: [first] + rest))
)
def test_measure_language_token_soup(tokens):
    try:
        parse_measures(" ".join(tokens))
    except ReproError:
        pass


class TestNumericalEdges:
    def test_extreme_rates_still_solve(self):
        """Rates spanning 12 orders of magnitude must not break the
        steady-state solver."""
        from repro.ctmc import CTMC, steady_state

        ctmc = CTMC(2)
        ctmc.add_transition(0, 1, 1e-6)
        ctmc.add_transition(1, 0, 1e6)
        pi = steady_state(ctmc)
        assert pi[0] == pytest.approx(1.0, rel=1e-9)

    def test_simulator_with_extreme_rates(self):
        from repro.aemilia.rates import ExpRate
        from repro.ctmc import measure, state_clause
        from repro.lts import LTS
        from repro.sim import make_generator, simulate

        lts = LTS(0)
        for _ in range(2):
            lts.add_state()
        lts.add_transition(0, "fast", 1, ExpRate(1e6), "fast")
        lts.add_transition(1, "slow", 0, ExpRate(1.0), "slow")
        m = measure("in1", state_clause("slow", 1.0))
        result = simulate(lts, [m], 200.0, make_generator(3))
        assert result.measures["in1"] == pytest.approx(1.0, abs=0.01)

    def test_tiny_probability_weights(self):
        from repro.aemilia import parse_architecture, generate_lts
        from repro.ctmc import build_ctmc, steady_state

        archi = parse_architecture("""
ARCHI_TYPE Tiny(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <fire, exp(1.0)> . Branch();
    Branch(void; void) = choice {
      <rare, inf(1, 1e-9)> . Main(),
      <common, inf(1, 1.0)> . Main()
    }
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        ctmc = build_ctmc(generate_lts(archi))
        pi = steady_state(ctmc)
        assert pi.sum() == pytest.approx(1.0)

    def test_deep_sequential_behaviour(self):
        """A long prefix chain must not hit recursion limits."""
        chain = " . ".join(f"<a{i}, _>" for i in range(300))
        archi = parse_architecture(f"""
ARCHI_TYPE Deep(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = {chain} . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        from repro.aemilia import generate_lts

        lts = generate_lts(archi)
        assert lts.num_states == 300

"""Chaos tests of the fault-tolerant runtime (docs/RELIABILITY.md).

The contract under test: injected faults — poisoned tasks, killed
workers, delays, even a SIGKILL of the whole sweep process — change
*nothing* about the results.  Retried tasks replay the same derived
random streams, checkpointed sweeps resume bit-identically, and when
the retry budget runs out the failure is a typed error that says which
task gave up after how many attempts.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.methodology import IncrementalMethodology
from repro.ctmc.solvers import resolve_method
from repro.errors import (
    CheckpointError,
    ReproError,
    RetryBudgetExceededError,
    RuntimeExecutionError,
    WorkerFaultError,
)
from repro.runtime import (
    FaultInjector,
    ParallelExecutor,
    RetryPolicy,
    SweepCheckpoint,
    TraceRecorder,
    sweep_fingerprint,
)
from repro.runtime.faults import DELAY, KILL, POISON, plan_preview
from repro.sim.output import replicate, replicate_until

REPO_ROOT = Path(__file__).resolve().parents[1]

FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.0)


def _cube(shared, item):
    return (shared or 0) + item**3


class TestFaultInjectorDeterminism:
    def test_plan_is_a_pure_function_of_seed_index_attempt(self):
        injector = FaultInjector(seed=7, kill=0.2, poison=0.3, delay=0.2)
        first = plan_preview(injector, 64)
        second = plan_preview(FaultInjector(seed=7, kill=0.2, poison=0.3,
                                            delay=0.2), 64)
        assert first == second
        assert set(first) <= {None, KILL, POISON, DELAY}
        # With 70% total fault probability over 64 indices something fires.
        assert any(first)

    def test_fault_budget_per_task_bounds_attempts(self):
        injector = FaultInjector(seed=1, poison=1.0, max_faults_per_task=2)
        assert injector.plan(0, 0) == POISON
        assert injector.plan(0, 1) == POISON
        assert injector.plan(0, 2) is None  # attempt 2 runs clean

    def test_explicit_indices_override_the_draw(self):
        injector = FaultInjector(
            seed=3, kill_indices=frozenset({4}),
            poison_indices=frozenset({5}),
        )
        assert injector.plan(4, 0) == KILL
        assert injector.plan(5, 0) == POISON
        assert injector.plan(6, 0) is None

    def test_parse_round_trip(self):
        injector = FaultInjector.parse(
            "seed=7,kill=0.1,poison=0.2,delay=0.3,delay-seconds=0.05,"
            "kill-indices=1+3,max-faults-per-task=4"
        )
        assert injector.seed == 7
        assert injector.kill == 0.1
        assert injector.poison == 0.2
        assert injector.delay == 0.3
        assert injector.delay_seconds == 0.05
        assert injector.kill_indices == frozenset({1, 3})
        assert injector.max_faults_per_task == 4
        with pytest.raises(ValueError):
            FaultInjector.parse("sabotage=1.0")

    def test_serial_kill_raises_instead_of_exiting(self):
        injector = FaultInjector(seed=0, kill_indices=frozenset({0}))
        with pytest.raises(WorkerFaultError):
            injector.apply(0, 0, in_worker=False)


class TestChaosEquivalence:
    """Faults plus retries must reproduce the fault-free results."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_poisoned_tasks_retry_to_identical_results(self, workers):
        items = list(range(12))
        clean = ParallelExecutor(workers).map(_cube, items, shared=2)
        tracer = TraceRecorder()
        faults = FaultInjector(
            seed=11, poison_indices=frozenset({1, 5, 9})
        )
        chaotic = ParallelExecutor(workers).map(
            _cube, items, shared=2,
            retry=FAST_RETRY, faults=faults, tracer=tracer,
        )
        assert chaotic == clean == [2 + i**3 for i in items]
        assert tracer.retries == 3

    def test_killed_workers_rebuild_pool_and_match(self):
        items = list(range(10))
        clean = [3 + i**3 for i in items]
        tracer = TraceRecorder()
        faults = FaultInjector(seed=5, kill_indices=frozenset({2, 7}))
        survived = ParallelExecutor(4).map(
            _cube, items, shared=3,
            retry=FAST_RETRY, faults=faults, tracer=tracer,
        )
        assert survived == clean
        assert tracer.retries >= 2  # both killed tasks were re-run

    def test_degrades_to_serial_when_workers_keep_dying(self):
        # Kill probability 1.0 for two attempts per task: every pool
        # round breaks until the executor gives up on pools entirely.
        items = list(range(6))
        tracer = TraceRecorder()
        faults = FaultInjector(seed=2, kill=1.0, max_faults_per_task=2)
        executor = ParallelExecutor(2, max_pool_restarts=1)
        results = executor.map(
            _cube, items, shared=0,
            retry=FAST_RETRY, faults=faults, tracer=tracer,
        )
        assert results == [i**3 for i in items]
        assert tracer.count("degraded") >= 1


class TestRetryBudget:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_exhaustion_raises_typed_error(self, workers):
        faults = FaultInjector(
            seed=4, poison_indices=frozenset({3}), max_faults_per_task=99
        )
        with pytest.raises(RetryBudgetExceededError) as info:
            ParallelExecutor(workers).map(
                _cube, list(range(6)),
                retry=RetryPolicy(max_attempts=2, backoff=0.0),
                faults=faults,
            )
        error = info.value
        assert error.index == 3
        assert error.attempts == 2
        assert isinstance(error.last_error, WorkerFaultError)
        # The hierarchy keeps `except ReproError` handlers working.
        assert isinstance(error, RuntimeExecutionError)
        assert isinstance(error, ReproError)


class TestCheckpointJournal:
    def test_wrong_fingerprint_is_refused(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepCheckpoint(path, sweep_fingerprint(parameter="a")) as ck:
            ck.record(0, {"m": 1.0}, 0.01)
        with pytest.raises(CheckpointError):
            SweepCheckpoint(
                path, sweep_fingerprint(parameter="b")
            ).load()

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepCheckpoint(path, sweep_fingerprint(parameter="a")) as ck:
            ck.record(0, {"m": 1.0}, 0.01)
            ck.record(1, {"m": 2.0}, 0.01)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "index": 2, "resu')  # torn
        reopened = SweepCheckpoint(path, sweep_fingerprint(parameter="a"))
        reopened.load()
        assert set(reopened.completed) == {0, 1}
        assert reopened.completed[1] == {"m": 2.0}

    def test_interrupted_sweep_resumes_bit_identically(
        self, tmp_path, rpc_family
    ):
        values = [0.5, 2.0, 5.0, 11.0, 25.0]
        baseline = IncrementalMethodology(rpc_family).sweep_markovian(
            "shutdown_timeout", values
        )
        journal = tmp_path / "sweep.jsonl"
        # First run: task 3 poisons on every attempt, so the sweep dies
        # with points 0-2 journalled (serial executes in order).
        doomed = IncrementalMethodology(
            rpc_family,
            retry=RetryPolicy(max_attempts=2, backoff=0.0),
            faults=FaultInjector(
                seed=0, poison_indices=frozenset({3}),
                max_faults_per_task=99,
            ),
        )
        with pytest.raises(RetryBudgetExceededError):
            doomed.sweep_markovian(
                "shutdown_timeout", values, checkpoint=str(journal)
            )
        survivor = SweepCheckpoint(
            journal, sweep_fingerprint(
                family=rpc_family.name, max_states=200_000,
                kind="markovian", variant="dpm",
                parameter="shutdown_timeout", values=values,
                const_overrides=[], method=resolve_method(None),
            )
        )
        survivor.load()
        assert set(survivor.completed) == {0, 1, 2}
        # Second run: no faults, same journal — replays 0-2, computes the
        # rest, and the full series matches the uninterrupted baseline.
        resumed_methodology = IncrementalMethodology(rpc_family)
        resumed = resumed_methodology.sweep_markovian(
            "shutdown_timeout", values, checkpoint=str(journal)
        )
        assert resumed == baseline
        assert resumed_methodology.tracer.checkpoint_hits == 3


class TestWelfordRetryRegression:
    """A retried replication must be recorded exactly once (satellite 4).

    If a replayed run reached the Welford accumulators twice, the sample
    list would grow, the running variance would shrink, and the adaptive
    stopping rule would fire early — all silently.  Chaos runs must
    instead be indistinguishable from clean ones.
    """

    def _streams_case(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        return methodology.build_lts("general", "dpm", None)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_replicate_until_estimates_unchanged_by_retries(
        self, rpc_family, workers
    ):
        lts = self._streams_case(rpc_family)
        measures = rpc_family.measures
        kwargs = dict(
            run_length=400.0, relative_half_width=0.5,
            min_runs=4, max_runs=12, seed=99,
        )
        tracer = TraceRecorder()
        clean = replicate_until(lts, measures, workers=1, **kwargs)
        # Fault indices address positions within each internal batch, so
        # index 0 poisons (and retries) the first task of every batch.
        chaotic = replicate_until(
            lts, measures, workers=workers,
            retry=FAST_RETRY,
            faults=FaultInjector(seed=6, poison_indices=frozenset({0})),
            tracer=tracer,
            **kwargs,
        )
        assert tracer.retries >= 1
        for name, estimate in clean.estimates.items():
            other = chaotic.estimates[name]
            assert estimate.mean == other.mean
            assert estimate.half_width == other.half_width
            assert estimate.runs == other.runs
            # Same number of samples: nothing was double-counted.
            assert clean.samples[name] == chaotic.samples[name]

    def test_replicate_estimates_unchanged_by_retries(self, rpc_family):
        lts = self._streams_case(rpc_family)
        measures = rpc_family.measures
        clean = replicate(lts, measures, 400.0, runs=6, seed=99)
        chaotic = replicate(
            lts, measures, 400.0, runs=6, seed=99,
            retry=FAST_RETRY,
            faults=FaultInjector(seed=8, poison_indices=frozenset({1, 4})),
        )
        for name in clean.estimates:
            assert clean.samples[name] == chaotic.samples[name]
            assert clean.estimates[name] == chaotic.estimates[name]


SIGKILL_SWEEPS = {
    "rpc": ("shutdown_timeout",
            "0.5,1.0,2.0,4.0,6.0,8.0,11.0,16.0,20.0,25.0"),
    "streaming": ("awake_period", "10.0,20.0,35.0,50.0,75.0,100.0"),
    "fleet": ("arrival_rate", "0.25,0.5,0.75,1.0,1.5,2.0,3.0,4.0"),
}


def _run_sweep_cli(extra, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "run-sweep", *extra],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _journal_completed(path):
    if not path.exists():
        return 0
    count = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            if record.get("kind") == "point":
                count += 1
    return count


@pytest.fixture(scope="module")
def sweep_baselines(tmp_path_factory):
    """Uninterrupted run-sweep JSON output, once per case."""
    outputs = {}
    root = tmp_path_factory.mktemp("baselines")
    for case, (parameter, values) in SIGKILL_SWEEPS.items():
        out = root / f"{case}.json"
        process = _run_sweep_cli([
            "--case", case, "--phase", "markovian",
            "--parameter", parameter, "--values", values,
            "--output", str(out),
        ])
        assert process.wait(timeout=180) == 0
        outputs[case] = out.read_bytes()
    return outputs


@pytest.mark.parametrize("case", sorted(SIGKILL_SWEEPS))
@pytest.mark.parametrize("workers", [1, 4])
class TestSigkillResume:
    """The acceptance scenario: SIGKILL mid-sweep, resume, same bits."""

    def test_sigkill_interrupted_sweep_resumes_bit_identically(
        self, case, workers, tmp_path, sweep_baselines
    ):
        parameter, values = SIGKILL_SWEEPS[case]
        journal = tmp_path / "journal.jsonl"
        common = [
            "--case", case, "--phase", "markovian",
            "--parameter", parameter, "--values", values,
            "--checkpoint", str(journal), "--workers", str(workers),
        ]
        # A deterministic delay fault slows every point down so the kill
        # reliably lands mid-sweep.
        victim = _run_sweep_cli(
            common + ["--chaos", "seed=1,delay=1.0,delay-seconds=0.3"]
        )
        deadline = time.time() + 120
        while time.time() < deadline:
            if _journal_completed(journal) >= 1:
                break
            if victim.poll() is not None:
                pytest.fail("sweep finished before it could be killed")
            time.sleep(0.01)
        else:
            pytest.fail("no checkpoint record appeared before timeout")
        victim.kill()  # SIGKILL — no cleanup handlers run
        victim.wait(timeout=30)
        total = len(values.split(","))
        completed = _journal_completed(journal)
        assert 1 <= completed < total, (
            f"kill landed outside the sweep: {completed}/{total} points"
        )
        # Resume: same journal, no chaos; replays the completed prefix
        # and finishes the rest.
        out = tmp_path / "resumed.json"
        resumed = _run_sweep_cli(common + ["--output", str(out)])
        assert resumed.wait(timeout=180) == 0
        assert out.read_bytes() == sweep_baselines[case]
        assert _journal_completed(journal) == total

"""Tests for the unified observability subsystem (repro.obs).

Pins the metric catalog (names, types, label schemas), the registry
semantics, both exporters, the hot-path instrumentation, and the core
invariant of the subsystem: results are bit-identical with metrics on,
off, or with per-iteration tracking enabled.
"""

import io
import json
import logging

import numpy as np
import pytest
from scipy import sparse

from repro.aemilia.rates import ExpRate
from repro.core.methodology import IncrementalMethodology
from repro.ctmc import measure, state_clause, trans_clause
from repro.ctmc.solvers import solve_steady_state
from repro.lts import LTS
from repro.obs import (
    CATALOG,
    IterationSeries,
    MetricRegistry,
    NullRegistry,
    configure_logging,
    emit,
    get_logger,
    get_registry,
    load_json_export,
    observe,
    render_json,
    render_prometheus,
    set_registry,
    use_registry,
    write_exports,
)
from repro.obs.log import verbosity_level
from repro.obs.metrics import (
    CACHE_EVENTS,
    RESIDUAL_BUCKETS,
    SIM_EVENTS,
    SIM_RUNS,
    SOLVER_ITERATIONS,
    SOLVER_SOLVES,
    SWEEP_POINTS,
    MetricError,
)
from repro.runtime.trace import TraceRecorder
from repro.sim import Simulator, make_generator
from repro.sim.batch_means import batch_means

#: Every metric family the instrumentation may emit — the public
#: contract documented in docs/OBSERVABILITY.md.  Renaming or relabeling
#: any of these is a breaking change and must update docs + this test.
EXPECTED_CATALOG = {
    "repro_solver_solves_total": ("counter", ("method",)),
    "repro_solver_iterations_total": ("counter", ("method",)),
    "repro_solver_fallbacks_total": ("counter", ("method",)),
    "repro_solver_residual": ("histogram", ("method",)),
    "repro_solver_seconds": ("histogram", ("method",)),
    "repro_sim_runs_total": ("counter", ()),
    "repro_sim_events_total": ("counter", ()),
    "repro_sim_deadlocks_total": ("counter", ()),
    "repro_sim_clock_carries_total": ("counter", ()),
    "repro_sim_run_seconds": ("histogram", ()),
    "repro_sim_event_rate": ("gauge", ()),
    "repro_sim_batches_total": ("counter", ()),
    "repro_sim_batch_lag1": ("gauge", ("measure",)),
    "repro_fastsim_runs_total": ("counter", ()),
    "repro_fastsim_events_total": ("counter", ()),
    "repro_fastsim_steps_total": ("counter", ()),
    "repro_fastsim_stream_refills_total": ("counter", ()),
    "repro_fastsim_batch_seconds": ("histogram", ()),
    "repro_fastsim_event_rate": ("gauge", ()),
    "repro_runtime_spans_total": ("counter", ("phase", "status")),
    "repro_runtime_span_seconds_total": ("counter", ("phase",)),
    "repro_runtime_worker_tasks_total": ("counter", ("worker",)),
    "repro_executor_tasks_total": ("counter", ("mode",)),
    "repro_cache_events_total": ("counter", ("kind",)),
    "repro_checkpoint_events_total": ("counter", ("kind",)),
    "repro_sweep_points_total": ("counter", ("case", "kind")),
    "repro_phase_seconds_total": ("counter", ("phase",)),
    "repro_workload_traces_total": ("counter", ("source",)),
    "repro_workload_events_replayed_total": ("counter", ("mode",)),
    "repro_workload_fit_iterations_total": ("counter", ("family",)),
    "repro_workload_ks_statistic": ("gauge", ("family",)),
    "repro_splitting_trees_total": ("counter", ()),
    "repro_splitting_clones_total": ("counter", ()),
    "repro_splitting_merges_total": ("counter", ()),
    "repro_splitting_events_total": ("counter", ()),
    "repro_parametric_eliminations_total": ("counter", ("status",)),
    "repro_parametric_elimination_seconds": ("histogram", ()),
    "repro_parametric_evaluations_total": ("counter", ()),
    "repro_parametric_eval_seconds": ("histogram", ()),
    "repro_parametric_fallbacks_total": ("counter", ("reason",)),
    "repro_fleet_devices": ("gauge", ()),
    "repro_fleet_product_states": ("gauge", ()),
    "repro_fleet_lumped_states": ("gauge", ()),
    "repro_fleet_operator_nnz_equivalent": ("gauge", ("representation",)),
    "repro_fleet_matvecs_total": ("counter", ("representation",)),
}


def birth_death(rates_up, rates_down):
    """Irreducible birth-death generator submatrix."""
    n = len(rates_up) + 1
    rows, cols, data = [], [], []
    diagonal = np.zeros(n)
    for i, rate in enumerate(rates_up):
        rows.append(i), cols.append(i + 1), data.append(rate)
        diagonal[i] -= rate
    for i, rate in enumerate(rates_down):
        rows.append(i + 1), cols.append(i), data.append(rate)
        diagonal[i + 1] -= rate
    for i in range(n):
        rows.append(i), cols.append(i), data.append(diagonal[i])
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def two_state_lts():
    lts = LTS(0)
    for _ in range(2):
        lts.add_state()
    lts.add_transition(0, "up", 1, ExpRate(2.0), "up")
    lts.add_transition(1, "down", 0, ExpRate(3.0), "down")
    return lts


MEASURES = [
    measure("in0", state_clause("up", 1.0)),
    measure("ups", trans_clause("up", 1.0)),
]


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricRegistry()
        with pytest.raises(MetricError):
            registry.counter("c_total").inc(-1.0)

    def test_gauge_set_inc_dec(self):
        registry = MetricRegistry()
        gauge = registry.gauge("g")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0

    def test_histogram_cumulative_buckets(self):
        registry = MetricRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            histogram.observe(value)
        child = histogram.labels()
        cumulative = dict(child.cumulative())
        assert cumulative["1.0"] == 2
        assert cumulative["5.0"] == 3
        assert cumulative["+Inf"] == 4
        assert child.count == 4
        assert child.sum == pytest.approx(104.2)

    def test_labels_schema_enforced(self):
        registry = MetricRegistry()
        family = registry.counter("c_total", labelnames=("kind",))
        family.labels(kind="hit").inc()
        with pytest.raises(MetricError):
            family.labels(other="x")
        with pytest.raises(MetricError):
            family.inc()  # labelled family needs .labels(...)

    def test_get_or_create_idempotent(self):
        registry = MetricRegistry()
        first = registry.counter("c_total", "help", ("kind",))
        second = registry.counter("c_total", "help", ("kind",))
        assert first is second

    def test_conflicting_type_or_labels_raise(self):
        registry = MetricRegistry()
        registry.counter("c_total", labelnames=("kind",))
        with pytest.raises(MetricError):
            registry.gauge("c_total", labelnames=("kind",))
        with pytest.raises(MetricError):
            registry.counter("c_total", labelnames=("other",))

    def test_snapshot_shape(self):
        registry = MetricRegistry()
        registry.counter("c_total", "help me", ("kind",)).labels(
            kind="hit"
        ).inc(3)
        snap = registry.snapshot()
        family = snap["c_total"]
        assert family["type"] == "counter"
        assert family["help"] == "help me"
        assert family["labelnames"] == ["kind"]
        assert family["series"] == [
            {"labels": {"kind": "hit"}, "value": 3.0}
        ]

    def test_merge_snapshot_adds_counters_and_histograms(self):
        source = MetricRegistry()
        source.counter("c_total").inc(2)
        source.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
        target = MetricRegistry()
        target.counter("c_total").inc(1)
        target.merge_snapshot(source.snapshot())
        target.merge_snapshot(source.snapshot())
        assert target.value("c_total") == 5.0
        child = target.histogram("h", buckets=(1.0, 5.0)).labels()
        assert child.count == 2
        assert child.sum == pytest.approx(1.0)
        assert dict(child.cumulative())["1.0"] == 2

    def test_merge_snapshot_gauge_takes_max(self):
        source = MetricRegistry()
        source.gauge("g").set(7.0)
        target = MetricRegistry()
        target.gauge("g").set(3.0)
        target.merge_snapshot(source.snapshot())
        assert target.value("g") == 7.0
        # Merging the smaller value back does not regress the gauge:
        # max-merge makes the result independent of arrival order.
        smaller = MetricRegistry()
        smaller.gauge("g").set(3.0)
        target.merge_snapshot(smaller.snapshot())
        assert target.value("g") == 7.0

    def test_merge_snapshot_gauge_merge_is_order_invariant(self):
        snapshots = []
        for value in (5.0, -2.0, 9.0, 1.0):
            registry = MetricRegistry()
            registry.gauge("g").set(value)
            snapshots.append(registry.snapshot())
        import itertools

        results = set()
        for order in itertools.permutations(snapshots):
            target = MetricRegistry()
            for snapshot in order:
                target.merge_snapshot(snapshot)
            results.add(target.value("g"))
        assert results == {9.0}

    def test_merge_snapshot_gauge_negative_first_merge(self):
        # A fresh series must adopt the incoming value even when it is
        # negative (e.g. a lag-1 autocorrelation gauge), not be clamped
        # by the 0.0 default of a newly created child.
        source = MetricRegistry()
        source.gauge("g").set(-0.4)
        target = MetricRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.value("g") == -0.4

    def test_value_and_reset(self):
        registry = MetricRegistry()
        registry.counter("c_total", labelnames=("kind",)).labels(
            kind="hit"
        ).inc()
        assert registry.value("c_total", {"kind": "hit"}) == 1.0
        assert registry.value("c_total", {"kind": "miss"}) == 0.0
        assert registry.value("absent") == 0.0
        registry.reset()
        assert registry.families() == []


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        registry = NullRegistry()
        assert registry.enabled is False
        registry.counter("c_total").inc()
        registry.gauge("g").labels(any="x").set(3.0)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == {}
        assert registry.families() == []


class TestDefaultRegistry:
    def test_use_registry_installs_and_restores(self):
        outer = get_registry()
        replacement = MetricRegistry()
        with use_registry(replacement) as installed:
            assert installed is replacement
            assert get_registry() is replacement
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        current = get_registry()
        replacement = MetricRegistry()
        previous = set_registry(replacement)
        try:
            assert previous is current
            assert get_registry() is replacement
        finally:
            set_registry(current)


class TestCatalog:
    def test_catalog_pins_every_metric(self):
        actual = {
            spec.name: (spec.kind, spec.labelnames) for spec in CATALOG
        }
        assert actual == EXPECTED_CATALOG

    def test_spec_on_creates_matching_family(self):
        registry = MetricRegistry()
        for spec in CATALOG:
            family = spec.on(registry)
            assert family.name == spec.name
            assert family.kind == spec.kind
            assert family.labelnames == spec.labelnames

    def test_residual_histogram_uses_residual_buckets(self):
        registry = MetricRegistry()
        family = [s for s in CATALOG if s.name == "repro_solver_residual"][
            0
        ].on(registry)
        assert family.buckets == RESIDUAL_BUCKETS


class TestCatalogDrift:
    """The three views of the metric contract must not drift apart:
    the ``CATALOG`` specs, the docs/OBSERVABILITY.md table, and the
    families runtime instrumentation actually registers."""

    def _doc_names(self):
        import re
        from pathlib import Path

        doc = (
            Path(__file__).resolve().parent.parent
            / "docs"
            / "OBSERVABILITY.md"
        ).read_text()
        return set(re.findall(r"^\| `(repro_[a-z0-9_]+)` \|", doc, re.M))

    def test_docs_table_matches_catalog_exactly(self):
        catalog_names = {spec.name for spec in CATALOG}
        doc_names = self._doc_names()
        missing_from_docs = catalog_names - doc_names
        missing_from_catalog = doc_names - catalog_names
        assert not missing_from_docs, (
            f"catalogued metrics absent from the docs table: "
            f"{sorted(missing_from_docs)}"
        )
        assert not missing_from_catalog, (
            f"documented metrics absent from CATALOG: "
            f"{sorted(missing_from_catalog)}"
        )

    def test_runtime_registered_families_are_catalogued(self, rpc_family):
        """Everything a real sweep registers must be a catalogued name
        (an instrumentation site minting an uncatalogued family would
        escape the docs and the ``metrics`` command)."""
        registry = MetricRegistry()
        with use_registry(registry):
            methodology = IncrementalMethodology(rpc_family)
            methodology.sweep_markovian(
                "shutdown_timeout", [0.5, 2.0, 11.0]
            )
        catalog_names = {spec.name for spec in CATALOG}
        registered = set(registry.snapshot())
        uncatalogued = registered - catalog_names
        assert not uncatalogued, (
            f"runtime registered uncatalogued metrics: "
            f"{sorted(uncatalogued)}"
        )
        assert registered <= self._doc_names()


class TestExporters:
    def _populated(self):
        registry = MetricRegistry()
        registry.counter(
            "repro_cache_events_total", "Cache events.", ("kind",)
        ).labels(kind="hit").inc(4)
        registry.histogram(
            "repro_solver_seconds", "Seconds.", ("method",), (0.1, 1.0)
        ).labels(method="sor").observe(0.5)
        registry.gauge("repro_sim_event_rate", "Rate.").set(123.5)
        return registry

    def test_prometheus_text_format(self):
        text = render_prometheus(self._populated())
        assert "# HELP repro_cache_events_total Cache events." in text
        assert "# TYPE repro_cache_events_total counter" in text
        assert 'repro_cache_events_total{kind="hit"} 4' in text
        assert "# TYPE repro_solver_seconds histogram" in text
        assert 'repro_solver_seconds_bucket{le="0.1",method="sor"} 0' in text
        assert 'repro_solver_seconds_bucket{le="1.0",method="sor"} 1' in text
        assert (
            'repro_solver_seconds_bucket{le="+Inf",method="sor"} 1' in text
        )
        assert 'repro_solver_seconds_sum{method="sor"} 0.5' in text
        assert 'repro_solver_seconds_count{method="sor"} 1' in text
        assert "repro_sim_event_rate 123.5" in text

    def test_json_roundtrip(self):
        registry = self._populated()
        decoded = json.loads(render_json(registry))
        assert decoded == json.loads(json.dumps(registry.snapshot()))

    def test_write_and_load_exports(self, tmp_path):
        prefix = str(tmp_path / "run")
        prom_path, json_path = write_exports(self._populated(), prefix)
        assert prom_path.endswith(".prom") and json_path.endswith(".json")
        loaded = load_json_export(json_path)
        assert loaded["repro_cache_events_total"]["series"][0]["value"] == 4
        with open(prom_path) as handle:
            assert "# TYPE" in handle.read()

    def test_load_json_export_inverts_render_json(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "export.json"
        path.write_text(render_json(registry))
        assert load_json_export(str(path)) == registry.snapshot()

    def test_render_while_updating_from_threads(self):
        """Exporters render a consistent snapshot while other threads
        hammer the registry — no exceptions, every rendered value a
        valid intermediate state."""
        import threading

        registry = self._populated()
        counter = registry.counter(
            "repro_cache_events_total", "Cache events.", ("kind",)
        ).labels(kind="hit")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                counter.inc()

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(50):
                decoded = json.loads(render_json(registry))
                value = decoded["repro_cache_events_total"]["series"][0][
                    "value"
                ]
                assert value >= 4
                assert "# TYPE" in render_prometheus(registry)
        finally:
            stop.set()
            for worker in workers:
                worker.join()

    def test_load_rejects_empty_and_non_object(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_json_export(str(empty))
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_json_export(str(array))


class TestSolverInstrumentation:
    Q = birth_death([2.0, 1.0, 0.5], [3.0, 2.0, 1.0])

    def test_track_iterations_attaches_trace(self):
        solution = solve_steady_state(
            self.Q, method="sor", track_iterations=True
        )
        trace = solution.report.iteration_trace
        assert len(trace) == solution.report.iterations
        iterations = [entry[0] for entry in trace]
        assert iterations == sorted(iterations)
        final_iteration, final_residual, final_change = trace[-1]
        assert final_residual == pytest.approx(
            solution.report.residual, rel=1e-6
        )
        assert final_change is not None

    def test_trace_absent_by_default(self):
        solution = solve_steady_state(self.Q, method="sor")
        assert solution.report.iteration_trace == ()
        assert "iteration_trace" not in solution.report.as_dict()

    def test_iteration_callback_sees_every_iteration(self):
        series = IterationSeries()
        solution = solve_steady_state(
            self.Q, method="power", iteration_callback=series
        )
        assert len(series) == solution.report.iterations
        residuals = [e["residual"] for e in series.entries]
        assert residuals[-1] == pytest.approx(
            solution.report.residual, rel=1e-6
        )

    def test_solver_metrics_recorded(self):
        with use_registry(MetricRegistry()) as registry:
            solution = solve_steady_state(self.Q, method="sor")
            assert (
                registry.value(SOLVER_SOLVES.name, {"method": "sor"}) == 1
            )
            assert registry.value(
                SOLVER_ITERATIONS.name, {"method": "sor"}
            ) == float(solution.report.iterations)

    def test_results_identical_with_metrics_on_off_and_tracked(self):
        with use_registry(NullRegistry()):
            off = solve_steady_state(self.Q, method="sor")
        with use_registry(MetricRegistry()):
            on = solve_steady_state(self.Q, method="sor")
            tracked = solve_steady_state(
                self.Q, method="sor", track_iterations=True
            )
        assert np.array_equal(off.pi, on.pi)
        assert np.array_equal(off.pi, tracked.pi)
        assert off.report.iterations == tracked.report.iterations


class TestSweepInstrumentation:
    VALUES = [1.0, 5.0, 11.0]

    def test_sweep_emits_cache_and_sweep_metrics(self, rpc_family):
        with use_registry(MetricRegistry()) as registry:
            methodology = IncrementalMethodology(rpc_family)
            methodology.sweep_markovian("shutdown_timeout", self.VALUES)
            assert registry.value(
                SWEEP_POINTS.name, {"case": "rpc", "kind": "markovian"}
            ) == float(len(self.VALUES))
            assert registry.value(CACHE_EVENTS.name, {"kind": "miss"}) == 1
            assert registry.value(
                CACHE_EVENTS.name, {"kind": "relabel"}
            ) == float(len(self.VALUES) - 1)
            assert registry.value(
                SOLVER_SOLVES.name, {"method": "direct"}
            ) == float(len(self.VALUES))
            phase_metrics = registry.snapshot()[
                "repro_phase_seconds_total"
            ]
            phases = {
                entry["labels"]["phase"]
                for entry in phase_metrics["series"]
            }
            assert "statespace" in phases

    def test_sweep_results_bit_identical_metrics_on_vs_off(
        self, rpc_family
    ):
        with use_registry(NullRegistry()):
            off = IncrementalMethodology(rpc_family).sweep_markovian(
                "shutdown_timeout", self.VALUES
            )
        with use_registry(MetricRegistry()):
            on = IncrementalMethodology(rpc_family).sweep_markovian(
                "shutdown_timeout", self.VALUES
            )
        assert on == off


class TestSimInstrumentation:
    def test_run_metrics_recorded(self):
        with use_registry(MetricRegistry()) as registry:
            result = Simulator(two_state_lts(), MEASURES).run(
                500.0, make_generator(3)
            )
            assert registry.value(SIM_RUNS.name) == 1
            assert registry.value(SIM_EVENTS.name) == float(
                result.events_fired
            )
            rate = registry.value("repro_sim_event_rate")
            assert rate > 0

    def test_batch_means_metrics_and_convergence(self):
        with use_registry(MetricRegistry()) as registry:
            result = batch_means(
                two_state_lts(), MEASURES, batch_length=200.0, batches=6,
                seed=1,
            )
            assert registry.value("repro_sim_batches_total") == 6
            # batches run back-to-back carry residual clocks
            assert registry.value("repro_sim_clock_carries_total") > 0
        for name in ("in0", "ups"):
            assert len(result.convergence[name]) == 5
            assert result.convergence[name][-1] == pytest.approx(
                result[name].half_width
            )

    def test_batch_means_identical_metrics_on_vs_off(self):
        with use_registry(NullRegistry()):
            off = batch_means(
                two_state_lts(), MEASURES, batch_length=200.0, batches=6,
                seed=1,
            )
        with use_registry(MetricRegistry()):
            on = batch_means(
                two_state_lts(), MEASURES, batch_length=200.0, batches=6,
                seed=1,
            )
        assert on.batch_means == off.batch_means
        assert on.convergence == off.convergence


class TestRuntimeTrace:
    def test_jsonl_lines_are_complete_records(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with use_registry(MetricRegistry()):
            recorder = TraceRecorder(path)
            for index in range(5):
                recorder.record("solve", index=index, wall=0.25)
            recorder.close()
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)  # every line parses on its own
            assert record["phase"] == "solve"

    def test_span_metrics_mirrored(self):
        with use_registry(MetricRegistry()) as registry:
            recorder = TraceRecorder()
            recorder.record("solve", status="ok", wall=0.5, worker=7)
            recorder.record("solve", status="retry", wall=0.5, worker=7)
            assert registry.value(
                "repro_runtime_spans_total",
                {"phase": "solve", "status": "ok"},
            ) == 1
            assert registry.value(
                "repro_runtime_spans_total",
                {"phase": "solve", "status": "retry"},
            ) == 1
            assert registry.value(
                "repro_runtime_span_seconds_total", {"phase": "solve"}
            ) == pytest.approx(1.0)
            assert registry.value(
                "repro_runtime_worker_tasks_total", {"worker": "7"}
            ) == 2

    def test_emit_metrics_false_stays_silent(self):
        with use_registry(MetricRegistry()) as registry:
            recorder = TraceRecorder(emit_metrics=False)
            recorder.record("solve", wall=0.5)
            assert registry.snapshot() == {}
        assert recorder.summary()["phases"]["solve"]["spans"] == 1


class TestProfiling:
    def test_observe_times_block_into_histogram(self):
        registry = MetricRegistry()
        with observe("repro_phase_seconds", registry, phase="solve"):
            pass
        child = registry.histogram(
            "repro_phase_seconds", "", ("phase",)
        ).labels(phase="solve")
        assert child.count == 1
        assert child.sum >= 0.0


class TestLogging:
    def test_logger_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"

    def test_verbosity_level_mapping(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert verbosity_level(0) == logging.WARNING
        assert verbosity_level(1) == logging.INFO
        assert verbosity_level(2) == logging.DEBUG

    def test_env_sets_baseline_and_verbose_only_lowers(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        assert verbosity_level(0) == logging.DEBUG
        assert verbosity_level(1) == logging.DEBUG
        monkeypatch.setenv("REPRO_LOG", "error")
        assert verbosity_level(1) == logging.INFO

    def test_configure_logging_writes_to_stream(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        stream = io.StringIO()
        logger = configure_logging(verbose=1, stream=stream, force=True)
        try:
            get_logger("unit").info("hello metrics")
            assert "[INFO repro.unit] hello metrics" in stream.getvalue()
            assert logger.level == logging.INFO
        finally:
            configure_logging(force=True)

    def test_emit_goes_to_stdout(self, capsys):
        emit("product line")
        assert capsys.readouterr().out == "product line\n"

"""Tests for trace semantics, DOT export and the ADL lint layer."""

import pytest

from repro.aemilia import generate_lts, parse_architecture
from repro.aemilia.static_analysis import Severity, analyze, report
from repro.ctmc import build_ctmc
from repro.lts import TAU, build_lts, check_weak_equivalence
from repro.lts.dot import ctmc_to_dot, lts_to_dot
from repro.lts.traces import (
    completed_weak_traces,
    trace_equivalent,
    weak_traces,
)


class TestWeakTraces:
    def test_simple_sequence(self):
        lts = build_lts(3, [(0, "a", 1), (1, "b", 2)])
        traces = weak_traces(lts, 2)
        assert traces == {(), ("a",), ("a", "b")}

    def test_tau_steps_are_free(self):
        lts = build_lts(4, [(0, TAU, 1), (1, "a", 2), (2, TAU, 3)])
        assert ("a",) in weak_traces(lts, 1)

    def test_bound_respected(self):
        lts = build_lts(1, [(0, "a", 0)])
        traces = weak_traces(lts, 3)
        assert max(len(t) for t in traces) == 3

    def test_coffee_machines_trace_equivalent_not_bisimilar(
        self, coffee_machines
    ):
        """The classic gap between trace and bisimulation semantics."""
        deterministic, nondeterministic = coffee_machines
        assert trace_equivalent(deterministic, nondeterministic, 6)
        assert not check_weak_equivalence(
            deterministic, nondeterministic
        ).equivalent

    def test_trace_difference_detected(self):
        first = build_lts(2, [(0, "a", 1)])
        second = build_lts(2, [(0, "b", 1)])
        assert not trace_equivalent(first, second, 1)

    def test_completed_traces_distinguish_deadlock(self):
        live = build_lts(2, [(0, "a", 1), (1, "a", 1)])
        dying = build_lts(2, [(0, "a", 1)])
        assert completed_weak_traces(live, 4) == set()
        assert ("a",) in completed_weak_traces(dying, 4)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            weak_traces(build_lts(1, []), -1)


class TestDotExport:
    def test_lts_dot_structure(self, pingpong):
        lts = generate_lts(pingpong)
        dot = lts_to_dot(lts, name="pingpong")
        assert dot.startswith('digraph "pingpong"')
        assert "doublecircle" in dot  # initial state marked
        assert "P.send_ping#Q.receive_ping" in dot
        assert dot.rstrip().endswith("}")

    def test_tau_edges_dashed(self):
        lts = build_lts(2, [(0, TAU, 1)])
        assert "style=dashed" in lts_to_dot(lts)

    def test_deadlock_states_shaded(self):
        lts = build_lts(2, [(0, "a", 1)])
        assert "fillcolor" in lts_to_dot(lts)

    def test_truncation_note(self):
        lts = build_lts(5, [(0, "a", 1)])
        dot = lts_to_dot(lts, max_states=2)
        assert "more states not shown" in dot

    def test_state_info_labels(self, pingpong):
        lts = generate_lts(pingpong)
        dot = lts_to_dot(lts, include_state_info=True)
        assert "P:" in dot

    def test_ctmc_dot(self, mm1k):
        ctmc = build_ctmc(generate_lts(mm1k))
        dot = ctmc_to_dot(ctmc, name="queue")
        assert 'digraph "queue"' in dot
        assert "->" in dot

    def test_quotes_escaped(self):
        lts = build_lts(1, [(0, 'x"y', 0)])
        dot = lts_to_dot(lts)
        assert '\\"' in dot


class TestStaticAnalysis:
    def test_clean_model_minimal_findings(self, pingpong):
        findings = analyze(pingpong)
        # Ping-pong is fully attached with reachable behaviour: clean.
        assert findings == []

    def test_unreachable_behaviour_detected(self):
        archi = parse_architecture("""
ARCHI_TYPE Lint1(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <a, _> . Main();
    Orphan(void; void) = <b, _> . Orphan()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        codes = {f.code for f in analyze(archi)}
        assert "unreachable-behaviour" in codes

    def test_dead_guard_detected(self):
        archi = parse_architecture("""
ARCHI_TYPE Lint2(const int cap := 0)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = choice {
      <a, _> . Main(),
      cond(cap > 0) -> <b, _> . Main()
    }
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        findings = analyze(archi)
        dead = [f for f in findings if f.code == "dead-guard"]
        assert dead and dead[0].severity is Severity.WARNING
        # With an override making the guard true, the finding flips.
        overridden = analyze(archi, {"cap": 3})
        assert not any(f.code == "dead-guard" for f in overridden)
        assert any(f.code == "constant-guard" for f in overridden)

    def test_open_interaction_detected(self):
        archi = parse_architecture("""
ARCHI_TYPE Lint3(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <shout, _> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI shout
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        findings = analyze(archi)
        assert any(f.code == "open-interaction" for f in findings)

    def test_unused_elem_type_detected(self):
        archi = parse_architecture("""
ARCHI_TYPE Lint4(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Used_Type(void)
  BEHAVIOR
    Main(void; void) = <a, _> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ELEM_TYPE Spare_Type(void)
  BEHAVIOR
    Main(void; void) = <b, _> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : Used_Type()
END
""")
        findings = analyze(archi)
        assert any(f.code == "unused-elem-type" for f in findings)

    def test_report_renders(self, pingpong):
        assert "no findings" in report(pingpong)

    def test_case_studies_are_clean(self, rpc_family):
        """The shipped models must carry no warnings."""
        warnings = [
            f
            for f in analyze(rpc_family.markovian_dpm)
            if f.severity is Severity.WARNING
        ]
        assert warnings == []

"""Tests for the exponential plug-in and cross-validation (Sect. 5.1)."""

import pytest

from repro.aemilia.rates import ExpRate, GeneralRate, ImmediateRate
from repro.core import cross_validate, exponential_plugin, require_valid
from repro.core.validation import MeasureValidation, ValidationReport
from repro.ctmc import measure, state_clause, trans_clause
from repro.distributions import Deterministic, Normal
from repro.errors import ValidationError
from repro.lts import LTS
from repro.sim import Estimate


def general_lts():
    lts = LTS(0)
    for _ in range(2):
        lts.add_state()
    lts.add_transition(
        0, "up", 1, GeneralRate(Deterministic(0.5)), "up"
    )
    lts.add_transition(
        1, "down", 0, GeneralRate(Normal(0.25, 0.01)), "down"
    )
    return lts


class TestExponentialPlugin:
    def test_general_rates_replaced_mean_preserving(self):
        plugin = exponential_plugin(general_lts())
        up = plugin.transitions[0].rate
        down = plugin.transitions[1].rate
        assert up == ExpRate(2.0)
        assert down == ExpRate(4.0)

    def test_exponential_and_immediate_untouched(self):
        lts = LTS(0)
        for _ in range(2):
            lts.add_state()
        lts.add_transition(0, "a", 1, ExpRate(3.0))
        lts.add_transition(1, "b", 0, ImmediateRate(1, 2.0))
        plugin = exponential_plugin(lts)
        assert plugin.transitions[0].rate == ExpRate(3.0)
        assert plugin.transitions[1].rate == ImmediateRate(1, 2.0)

    def test_events_and_weights_preserved(self):
        plugin = exponential_plugin(general_lts())
        assert plugin.transitions[0].event == "up"


class TestCrossValidate:
    def test_validation_passes_on_agreeing_model(self):
        measures = [
            measure("in0", state_clause("up", 1.0)),
            measure("downs", trans_clause("down", 1.0)),
        ]
        report = cross_validate(
            general_lts(), measures, run_length=3_000.0, runs=8, seed=17
        )
        assert report.passed
        for validation in report.measures.values():
            assert validation.relative_error < 0.10
        require_valid(report)  # should not raise

    def test_report_rendering(self):
        measures = [measure("in0", state_clause("up", 1.0))]
        report = cross_validate(
            general_lts(), measures, run_length=2_000.0, runs=6, seed=3
        )
        text = str(report)
        assert "cross-validation" in text
        assert "in0" in text

    def test_require_valid_raises_on_failure(self):
        failing = ValidationReport(
            {
                "m": MeasureValidation(
                    "m",
                    analytic=1.0,
                    simulated=Estimate(2.0, 0.1, 0.1, 5, 0.9),
                    within_interval=False,
                    relative_error=0.5,
                )
            }
        )
        assert not failing.passed
        with pytest.raises(ValidationError):
            require_valid(failing)

    def test_near_zero_measures_use_relative_clause(self):
        """A measure that is 0 in both worlds must validate without noise
        tripping the CI-overlap criterion."""
        lts = general_lts()
        never = measure("never", trans_clause("ghost_action", 1.0))
        report = cross_validate(
            lts, [never], run_length=500.0, runs=4, seed=2
        )
        assert report.measures["never"].within_interval


class TestRpcValidation:
    """The paper's Fig. 5 protocol on the real case study (reduced size)."""

    def test_rpc_general_model_validates(self, rpc_family):
        from repro.core import IncrementalMethodology

        methodology = IncrementalMethodology(rpc_family)
        report = methodology.validate(
            {"shutdown_timeout": 5.0},
            run_length=8_000.0,
            runs=6,
            warmup=200.0,
        )
        assert report.passed, str(report)

"""Tests for element-type static validation."""

import pytest

from repro.aemilia import builder as b
from repro.aemilia.elemtypes import (
    Direction,
    ElemType,
    Interaction,
    Multiplicity,
    collect_actions,
)
from repro.aemilia.expressions import DataType, Literal, Variable, binop
from repro.errors import (
    SpecificationError,
    TypeCheckError,
    UnguardedRecursionError,
)


def simple_type(**kwargs):
    return b.elem_type(
        "T_Type",
        [b.process("Main", b.prefix("a", b.passive(), b.call("Main")))],
        **kwargs,
    )


class TestConstruction:
    def test_initial_definition_is_first(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process("First", b.prefix("a", b.passive(), b.call("Second"))),
                b.process("Second", b.prefix("b", b.passive(), b.call("First"))),
            ],
        )
        assert elem.initial_definition.name == "First"

    def test_duplicate_equations_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate behaviour"):
            ElemType(
                "T_Type",
                (
                    b.process("Main", b.prefix("a", b.passive(), b.stop())),
                    b.process("Main", b.prefix("b", b.passive(), b.stop())),
                ),
            )

    def test_duplicate_interactions_rejected(self):
        with pytest.raises(SpecificationError, match="declared twice"):
            ElemType(
                "T_Type",
                (b.process("Main", b.prefix("a", b.passive(), b.stop())),),
                (
                    Interaction("a", Direction.INPUT),
                    Interaction("a", Direction.OUTPUT),
                ),
            )

    def test_no_equations_rejected(self):
        with pytest.raises(SpecificationError, match="no behaviour"):
            ElemType("T_Type", ())

    def test_unknown_lookups(self):
        elem = simple_type()
        with pytest.raises(SpecificationError):
            elem.definition("Nope")
        with pytest.raises(SpecificationError):
            elem.interaction("nope")


class TestActionCollection:
    def test_collect_actions(self):
        term = b.choice(
            b.prefix("a", b.passive(), b.prefix("b", b.passive(), b.stop())),
            b.cond(Literal(True), b.prefix("c", b.passive(), b.call("P"))),
        )
        assert collect_actions(term) == {"a", "b", "c"}

    def test_all_and_internal_actions(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.prefix(
                        "pub", b.passive(), b.prefix("priv", b.passive(), b.call("Main"))
                    ),
                )
            ],
            inputs=["pub"],
        )
        assert elem.all_actions() == {"pub", "priv"}
        assert elem.internal_actions() == {"priv"}


class TestValidation:
    def test_undefined_call_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [b.process("Main", b.prefix("a", b.passive(), b.call("Ghost")))],
        )
        with pytest.raises(SpecificationError, match="undefined behaviour"):
            elem.validate({})

    def test_unused_interaction_rejected(self):
        elem = simple_type(inputs=["phantom"])
        with pytest.raises(SpecificationError, match="never occurs"):
            elem.validate({})

    def test_unguarded_self_recursion_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [b.process("Main", b.cond(Literal(True), b.call("Main")))],
        )
        with pytest.raises(UnguardedRecursionError):
            elem.validate({})

    def test_unguarded_mutual_recursion_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process("Main", b.cond(Literal(True), b.call("Other"))),
                b.process("Other", b.cond(Literal(True), b.call("Main"))),
            ],
        )
        with pytest.raises(UnguardedRecursionError):
            elem.validate({})

    def test_guarded_recursion_accepted(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process("Main", b.prefix("a", b.passive(), b.call("Other"))),
                b.process("Other", b.prefix("b", b.passive(), b.call("Main"))),
            ],
        )
        elem.validate({})

    def test_call_arity_checked(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.prefix("a", b.passive(), b.call("Counter", 1, 2)),
                ),
                b.process(
                    "Counter",
                    b.prefix("b", b.passive(), b.call("Main")),
                    formals=[b.formal("n")],
                ),
            ],
        )
        with pytest.raises(TypeCheckError, match="argument"):
            elem.validate({})

    def test_call_argument_type_checked(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.prefix("a", b.passive(), b.call("Counter", Literal(True))),
                ),
                b.process(
                    "Counter",
                    b.prefix("b", b.passive(), b.call("Main")),
                    formals=[b.formal("n", DataType.INT)],
                ),
            ],
        )
        with pytest.raises(TypeCheckError, match="type"):
            elem.validate({})

    def test_int_widens_to_real_parameter(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.prefix("a", b.passive(), b.call("Timer", 3)),
                ),
                b.process(
                    "Timer",
                    b.prefix("b", b.passive(), b.call("Main")),
                    formals=[b.formal("t", DataType.REAL)],
                ),
            ],
        )
        elem.validate({})

    def test_non_boolean_guard_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.choice(
                        b.prefix("a", b.passive(), b.call("Main")),
                        b.cond(
                            binop("+", Variable("n"), 1),
                            b.prefix("b", b.passive(), b.call("Main", Variable("n"))),
                        ),
                    ),
                    formals=[b.formal("n", DataType.INT, 0)],
                )
            ],
        )
        with pytest.raises(TypeCheckError, match="expected bool"):
            elem.validate({})

    def test_rate_constants_visible(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.prefix("a", b.exp(Variable("speed")), b.call("Main")),
                )
            ],
        )
        elem.validate({"speed": DataType.REAL})

    def test_unbound_rate_variable_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [
                b.process(
                    "Main",
                    b.prefix("a", b.exp(Variable("speed")), b.call("Main")),
                )
            ],
        )
        with pytest.raises(TypeCheckError, match="speed"):
            elem.validate({})

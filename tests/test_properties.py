"""Cross-cutting property-based tests (hypothesis).

These check the algebraic laws that tie the subsystems together:

* weak bisimilarity is a congruence for hiding;
* hiding is idempotent and monotone in the hidden set;
* tau-SCC condensation preserves weak equivalence (also in weak.py tests);
* steady-state solutions satisfy the balance equations on random chains;
* the transient solution converges to the steady state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, steady_state, transient_distribution
from repro.lts import (
    TAU,
    build_lts,
    check_weak_equivalence,
    hide,
    restrict,
)


@st.composite
def random_lts(draw, max_states=5, labels=("a", "b", "c")):
    n = draw(st.integers(1, max_states))
    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from(list(labels) + [TAU]),
                st.integers(0, n - 1),
            ),
            max_size=12,
        )
    )
    return build_lts(n, transitions)


@st.composite
def random_irreducible_chain(draw, max_states=6):
    """A random CTMC made irreducible by a cycle through all states."""
    n = draw(st.integers(2, max_states))
    ctmc = CTMC(n)
    # Backbone cycle guarantees one BSCC covering everything.
    for state in range(n):
        rate = draw(st.floats(0.1, 5.0))
        ctmc.add_transition(state, (state + 1) % n, rate)
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 5.0),
            ),
            max_size=8,
        )
    )
    for source, target, rate in extra:
        if source != target:
            ctmc.add_transition(source, target, rate)
    return ctmc


@settings(max_examples=50, deadline=None)
@given(random_lts(), random_lts(), st.sets(st.sampled_from(["a", "b", "c"])))
def test_weak_bisimilarity_congruence_for_hiding(first, second, hidden):
    """s ~weak~ t implies hide(L)(s) ~weak~ hide(L)(t)."""
    before = check_weak_equivalence(first, second).equivalent
    if before:
        after = check_weak_equivalence(
            hide(first, list(hidden)), hide(second, list(hidden))
        ).equivalent
        assert after


@settings(max_examples=50, deadline=None)
@given(random_lts(), st.sets(st.sampled_from(["a", "b", "c"])))
def test_hiding_is_idempotent(lts, hidden):
    once = hide(lts, list(hidden))
    twice = hide(once, list(hidden))
    assert [
        (t.source, t.label, t.target) for t in once.transitions
    ] == [(t.source, t.label, t.target) for t in twice.transitions]


@settings(max_examples=50, deadline=None)
@given(random_lts(), st.sets(st.sampled_from(["a", "b", "c"])))
def test_hiding_everything_then_some_is_hiding_everything(lts, hidden):
    """hide(all) == hide(all) . hide(some)."""
    all_labels = ["a", "b", "c"]
    direct = hide(lts, all_labels)
    staged = hide(hide(lts, list(hidden)), all_labels)
    assert {
        (t.source, t.label, t.target) for t in direct.transitions
    } == {(t.source, t.label, t.target) for t in staged.transitions}


@settings(max_examples=50, deadline=None)
@given(random_lts(), st.sets(st.sampled_from(["a", "b", "c"])))
def test_restriction_removes_only_matching(lts, removed):
    restricted = restrict(lts, list(removed), prune=False)
    kept_labels = {t.label for t in restricted.transitions}
    assert not (kept_labels & removed)
    assert restricted.num_transitions <= lts.num_transitions


@settings(max_examples=50, deadline=None)
@given(random_lts())
def test_restricting_nothing_is_identity(lts):
    restricted = restrict(lts, [], prune=False)
    assert restricted.num_transitions == lts.num_transitions


@settings(max_examples=40, deadline=None)
@given(random_irreducible_chain())
def test_steady_state_satisfies_balance(ctmc):
    pi = steady_state(ctmc)
    q = ctmc.generator_matrix().toarray()
    residual = pi @ q
    assert np.abs(residual).max() < 1e-8
    assert pi.sum() == pytest.approx(1.0)
    assert (pi >= 0).all()


@settings(max_examples=20, deadline=None)
@given(random_irreducible_chain())
def test_transient_converges_to_steady_state(ctmc):
    pi_infinity = steady_state(ctmc)
    # Mixing is governed by the slowest transitions: scale the horizon by
    # the smallest exit rate (the backbone guarantees it is >= 0.1).
    slowest = min(
        ctmc.exit_rate(state) for state in range(ctmc.num_states)
    )
    horizon = 400.0 / max(slowest, 1e-3)
    pi_t = transient_distribution(ctmc, horizon)
    assert np.abs(pi_t - pi_infinity).max() < 1e-5


@settings(max_examples=20, deadline=None)
@given(random_irreducible_chain(), st.floats(0.01, 5.0), st.floats(0.01, 5.0))
def test_transient_semigroup_property(ctmc, t1, t2):
    """pi(t1 + t2) == transient from pi(t1) for another t2."""
    via_two_steps = transient_distribution(
        ctmc, t2, initial=transient_distribution(ctmc, t1)
    )
    direct = transient_distribution(ctmc, t1 + t2)
    assert np.abs(via_two_steps - direct).max() < 1e-7


@settings(max_examples=15, deadline=None)
@given(random_irreducible_chain(), st.floats(0.05, 2.0), st.floats(0.05, 2.0))
def test_accumulated_reward_is_additive(ctmc, t1, t2):
    """Y(t1 + t2) = Y(t1) + Y'(t2) where Y' starts from pi(t1)."""
    from repro.ctmc.rewards import accumulated_state_reward

    rewards = np.arange(ctmc.num_states, dtype=float) + 1.0
    direct = accumulated_state_reward(ctmc, t1 + t2, rewards)
    first = accumulated_state_reward(ctmc, t1, rewards)
    middle = transient_distribution(ctmc, t1)
    second = accumulated_state_reward(ctmc, t2, rewards, initial=middle)
    assert direct == pytest.approx(first + second, rel=1e-6, abs=1e-8)


@settings(max_examples=15, deadline=None)
@given(random_irreducible_chain())
def test_lumping_preserves_steady_state_masses(ctmc):
    """Block masses of the lumped chain equal summed full-chain masses."""
    from repro.ctmc.lumping import lump

    quotient, block_of = lump(ctmc)
    pi_full = steady_state(ctmc)
    pi_quotient = steady_state(quotient)
    for block in range(quotient.num_states):
        mass = sum(
            pi_full[s]
            for s in range(ctmc.num_states)
            if block_of[s] == block
        )
        assert pi_quotient[block] == pytest.approx(mass, abs=1e-9)

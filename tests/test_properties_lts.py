"""Property-based tests of the equivalence/aggregation layers (hypothesis).

Laws the reliability layer leans on when it reuses or collapses models:

* a tau-SCC condensation is weakly bisimilar to the original system, and
  hiding any (tau-free) label set preserves that equivalence — checked on
  guaranteed-equivalent pairs so the property is never vacuous;
* ordinary lumping preserves every ``ENABLED``-based steady-state reward,
  not just the block masses;
* :meth:`ParametricLTS.relabel` round-trips: for random rate
  assignments, relabeling a cached skeleton is bit-identical to fresh
  generation, in both directions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, steady_state
from repro.ctmc.lumping import lump
from repro.lts import TAU, build_lts, check_weak_equivalence, hide
from repro.lts.weak import tau_condensation
from repro.runtime import generate_parametric

VISIBLE = ("a", "b", "c")


@st.composite
def random_lts(draw, max_states=5):
    n = draw(st.integers(1, max_states))
    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from(list(VISIBLE) + [TAU]),
                st.integers(0, n - 1),
            ),
            max_size=12,
        )
    )
    return build_lts(n, transitions)


@st.composite
def random_labelled_chain(draw, max_states=6, labels=("busy", "idle")):
    """An irreducible CTMC whose states carry enabled-label sets."""
    n = draw(st.integers(2, max_states))
    ctmc = CTMC(n)
    for state in range(n):
        ctmc.add_transition(state, (state + 1) % n, draw(st.floats(0.1, 5.0)))
    for source, target, rate in draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(0.1, 5.0),
            ),
            max_size=8,
        )
    ):
        if source != target:
            ctmc.add_transition(source, target, rate)
    for state in range(n):
        enabled = draw(st.frozensets(st.sampled_from(list(labels))))
        ctmc.set_enabled_labels(state, enabled)
    return ctmc


@settings(max_examples=60, deadline=None)
@given(random_lts())
def test_tau_condensation_is_weakly_bisimilar(lts):
    quotient, state_map = tau_condensation(lts)
    check = check_weak_equivalence(lts, quotient)
    assert check.equivalent
    assert state_map[lts.initial] == quotient.initial


@settings(max_examples=60, deadline=None)
@given(random_lts(), st.sets(st.sampled_from(VISIBLE)))
def test_hiding_preserves_weak_bisimilarity(lts, hidden):
    """Hiding a tau-free label set keeps equivalent systems equivalent.

    The pair (system, its tau-condensation) is weakly bisimilar by
    construction, so — unlike conditioning on two random systems being
    equivalent — every drawn example actually exercises the property.
    """
    assert TAU not in hidden
    quotient, _ = tau_condensation(lts)
    check = check_weak_equivalence(
        hide(lts, list(hidden)), hide(quotient, list(hidden))
    )
    assert check.equivalent


@settings(max_examples=40, deadline=None)
@given(random_labelled_chain())
def test_lumping_preserves_enabled_label_rewards(ctmc):
    """Every ENABLED-style steady-state reward survives the quotient."""
    quotient, block_of = lump(ctmc)
    pi_full = steady_state(ctmc)
    pi_quotient = steady_state(quotient)
    for label in ("busy", "idle"):
        full_reward = sum(
            pi_full[s]
            for s in range(ctmc.num_states)
            if label in ctmc.enabled_labels(s)
        )
        quotient_reward = sum(
            pi_quotient[b]
            for b in range(quotient.num_states)
            if label in quotient.enabled_labels(b)
        )
        assert quotient_reward == pytest.approx(full_reward, abs=1e-9)
    # Sanity: both solutions are distributions.
    assert np.isclose(pi_full.sum(), 1.0)
    assert np.isclose(pi_quotient.sum(), 1.0)


@pytest.fixture(scope="module")
def mm1k_skeleton(mm1k):
    """Default-rate parametric state space of the M/M/1/K specimen."""
    return generate_parametric(mm1k)


def _transition_bits(lts):
    return [
        (t.source, t.label, t.target, repr(t.rate), t.event, t.weight)
        for t in lts.transitions
    ]


@settings(max_examples=40, deadline=None)
@given(st.floats(0.01, 50.0), st.floats(0.01, 50.0))
def test_relabel_round_trips_random_rates(mm1k, mm1k_skeleton, arrival,
                                          service):
    overrides = {"arrival_rate": arrival, "service_rate": service}
    env = mm1k.bind_constants(overrides)
    relabeled = mm1k_skeleton.relabel(env)
    fresh = generate_parametric(mm1k, overrides)
    # Forward: relabeling the cached skeleton is bit-identical to a
    # fresh generation under the same constants.
    assert _transition_bits(relabeled) == _transition_bits(fresh.lts)
    assert relabeled.num_states == fresh.lts.num_states
    assert relabeled.initial == fresh.lts.initial
    # Backward: relabeling the fresh skeleton to the default constants
    # recovers the original skeleton exactly.
    back = fresh.relabel(mm1k_skeleton.const_env)
    assert _transition_bits(back) == _transition_bits(mm1k_skeleton.lts)


def test_relabel_identity_returns_same_object(mm1k, mm1k_skeleton):
    """Relabeling to the skeleton's own environment is a no-op."""
    assert mm1k_skeleton.relabel(mm1k_skeleton.const_env) is mm1k_skeleton.lts

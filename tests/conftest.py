"""Shared fixtures: small specimen models and cached case-study families."""

from __future__ import annotations

import pytest

from repro.aemilia import parse_architecture
from repro.lts import build_lts


@pytest.fixture(scope="session")
def pingpong_spec() -> str:
    """A tiny two-component untimed architecture used across tests."""
    return """
ARCHI_TYPE Ping_Pong(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Ping_Type(void)
  BEHAVIOR
    Ping(void; void) =
      <send_ping, _> . <receive_pong, _> . Ping()
  INPUT_INTERACTIONS UNI receive_pong
  OUTPUT_INTERACTIONS UNI send_ping
ELEM_TYPE Pong_Type(void)
  BEHAVIOR
    Pong(void; void) =
      <receive_ping, _> . <send_pong, _> . Pong()
  INPUT_INTERACTIONS UNI receive_ping
  OUTPUT_INTERACTIONS UNI send_pong
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    P : Ping_Type();
    Q : Pong_Type()
  ARCHI_ATTACHMENTS
    FROM P.send_ping TO Q.receive_ping;
    FROM Q.send_pong TO P.receive_pong
END
"""


@pytest.fixture(scope="session")
def pingpong(pingpong_spec):
    """Parsed ping-pong architecture."""
    return parse_architecture(pingpong_spec)


@pytest.fixture(scope="session")
def mm1k_spec() -> str:
    """An M/M/1/K queue written in the ADL (K as a const parameter)."""
    return """
ARCHI_TYPE Mm1k(const int capacity := 3,
                const real arrival_rate := 1.0,
                const real service_rate := 2.0)
ARCHI_ELEM_TYPES
ELEM_TYPE Source_Type(void)
  BEHAVIOR
    Source(void; void) =
      <arrive, exp(arrival_rate)> . <enqueue, inf(1, 1)> . Source()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI enqueue
ELEM_TYPE Queue_Type(void)
  BEHAVIOR
    Queue(int n := 0; void) =
      choice {
        <accept, _> . Queue_Arrived(n),
        cond(n > 0) -> <serve, exp(service_rate)> . Queue(n - 1)
      };
    Queue_Arrived(int n; void) =
      choice {
        cond(n < capacity) -> <admit, inf(1, 1)> . Queue(n + 1),
        cond(n = capacity) -> <reject, inf(1, 1)> . Queue(n)
      }
  INPUT_INTERACTIONS UNI accept
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    SRC : Source_Type();
    Q : Queue_Type(0)
  ARCHI_ATTACHMENTS
    FROM SRC.enqueue TO Q.accept
END
"""


@pytest.fixture(scope="session")
def mm1k(mm1k_spec):
    """Parsed M/M/1/K architecture."""
    return parse_architecture(mm1k_spec)


@pytest.fixture()
def coffee_machines():
    """Milner's classic: a.(b + c) vs a.b + a.c (not weakly bisimilar)."""
    deterministic = build_lts(
        3, [(0, "coin", 1), (1, "tea", 2), (1, "coffee", 2)]
    )
    nondeterministic = build_lts(
        5,
        [
            (0, "coin", 1),
            (0, "coin", 2),
            (1, "tea", 3),
            (2, "coffee", 4),
        ],
    )
    return deterministic, nondeterministic


@pytest.fixture(scope="session")
def rpc_family():
    """The rpc model family (session-cached; parsing is pure)."""
    from repro.casestudies.rpc import family

    return family()


@pytest.fixture(scope="session")
def streaming_family():
    """The streaming model family (session-cached)."""
    from repro.casestudies.streaming import family

    return family()

"""Tests for transient analysis by uniformisation."""

import math

import numpy as np
import pytest

from repro.ctmc import (
    CTMC,
    expected_state_reward_at,
    steady_state,
    transient_distribution,
)
from repro.errors import SolverError


def two_state(rate_up=2.0, rate_down=3.0):
    ctmc = CTMC(2)
    ctmc.add_transition(0, 1, rate_up)
    ctmc.add_transition(1, 0, rate_down)
    return ctmc


def closed_form_two_state(lam, mu, t):
    """P(state 1 at t | start in 0) for the two-state chain."""
    total = lam + mu
    return (lam / total) * (1.0 - math.exp(-total * t))


class TestTwoStateClosedForm:
    @pytest.mark.parametrize("t", [0.01, 0.1, 0.5, 1.0, 5.0])
    def test_matches_analytic(self, t):
        lam, mu = 2.0, 3.0
        pi = transient_distribution(two_state(lam, mu), t)
        assert pi[1] == pytest.approx(closed_form_two_state(lam, mu, t), abs=1e-8)

    def test_time_zero_returns_initial(self):
        pi = transient_distribution(two_state(), 0.0)
        assert pi == pytest.approx([1.0, 0.0])

    def test_long_horizon_converges_to_steady_state(self):
        ctmc = two_state()
        limit = steady_state(ctmc)
        pi = transient_distribution(ctmc, 100.0)
        assert pi == pytest.approx(limit, abs=1e-9)

    def test_custom_initial_distribution(self):
        ctmc = two_state()
        pi = transient_distribution(ctmc, 0.0, initial=np.array([0.25, 0.75]))
        assert pi == pytest.approx([0.25, 0.75])


class TestPureDeathChain:
    def test_poisson_stage_probabilities(self):
        """A 3-stage Erlang clock: stage occupancy is a Poisson tail."""
        ctmc = CTMC(3)
        ctmc.add_transition(0, 1, 1.0)
        ctmc.add_transition(1, 2, 1.0)
        pi = transient_distribution(ctmc, 1.0)
        assert pi[0] == pytest.approx(math.exp(-1.0), abs=1e-9)
        assert pi[1] == pytest.approx(math.exp(-1.0), abs=1e-9)
        assert pi[2] == pytest.approx(1.0 - 2.0 * math.exp(-1.0), abs=1e-9)


class TestErrorsAndEdges:
    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(two_state(), -1.0)

    def test_wrong_initial_length_rejected(self):
        with pytest.raises(SolverError):
            transient_distribution(two_state(), 1.0, initial=np.ones(3) / 3)

    def test_frozen_chain_stays_put(self):
        ctmc = CTMC(2)  # no transitions at all
        pi = transient_distribution(ctmc, 10.0)
        assert pi == pytest.approx([1.0, 0.0])

    def test_mass_conserved(self):
        pi = transient_distribution(two_state(), 2.5)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()


class TestRewardAtTime:
    def test_expected_reward(self):
        ctmc = two_state(2.0, 3.0)
        rewards = np.array([0.0, 10.0])
        value = expected_state_reward_at(ctmc, 1.0, rewards)
        expected = 10.0 * closed_form_two_state(2.0, 3.0, 1.0)
        assert value == pytest.approx(expected, abs=1e-7)

    def test_reward_length_checked(self):
        with pytest.raises(SolverError):
            expected_state_reward_at(two_state(), 1.0, np.ones(3))

"""Tests for the specification-language tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aemilia.lexer import EOF, IDENT, NUMBER, tokenize
from repro.errors import LexerError


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("ARCHI_TYPE Server_Type choice")
        assert tokens[0].kind == "ARCHI_TYPE"
        assert tokens[1].kind == IDENT
        assert tokens[2].kind == "choice"

    def test_identifier_with_underscores_and_digits(self):
        token = tokenize("receive_rpc_packet2")[0]
        assert token.kind == IDENT
        assert token.text == "receive_rpc_packet2"

    def test_lone_underscore_is_passive_symbol(self):
        assert kinds("_")[:-1] == ["_"]

    def test_identifier_starting_with_underscore_rejected(self):
        with pytest.raises(LexerError, match="cannot start with '_'"):
            tokenize("_foo")

    def test_integer_number(self):
        token = tokenize("42")[0]
        assert token.kind == NUMBER and token.text == "42"

    def test_real_number(self):
        assert texts("0.25") == ["0.25"]

    def test_scientific_notation(self):
        assert texts("1e-3 2.5E+4") == ["1e-3", "2.5E+4"]

    def test_number_then_dot_operator(self):
        """'1 .' style prefix dots must not be eaten as a decimal point."""
        assert texts("Server(1).stop") == ["Server", "(", "1", ")", ".", "stop"]

    def test_multi_char_symbols(self):
        assert texts("a := b -> c <= d >= e != f") == [
            "a", ":=", "b", "->", "c", "<=", "d", ">=", "e", "!=", "f",
        ]

    def test_angle_brackets_and_commas(self):
        assert texts("<serve, exp(2.0)>") == [
            "<", "serve", ",", "exp", "(", "2.0", ")", ">",
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexerError, match="unexpected character"):
            tokenize("a $ b")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment with symbols $%^\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError, match="unterminated"):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        try:
            tokenize("ok\n   $")
        except LexerError as error:
            assert error.line == 2
            assert error.column == 4
        else:  # pragma: no cover
            pytest.fail("expected LexerError")


@given(
    st.lists(
        st.sampled_from(
            ["choice", "cond", "foo", "Bar_Baz", "42", "3.5", "(", ")",
             "<", ">", ",", ";", ".", ":=", "->", "_"]
        ),
        min_size=0,
        max_size=30,
    )
)
def test_token_count_is_stable_under_whitespace(parts):
    """Joining with different whitespace produces identical token streams."""
    tight = tokenize(" ".join(parts))
    spread = tokenize("\n\t ".join(parts))
    assert [t.kind for t in tight] == [t.kind for t in spread]
    assert [t.text for t in tight] == [t.text for t in spread]


@given(st.integers(0, 10**9))
def test_integers_lex_as_single_number(value):
    tokens = tokenize(str(value))
    assert tokens[0].kind == NUMBER
    assert tokens[0].text == str(value)
    assert tokens[1].kind == EOF

"""Tests of the parametric steady-state fast path (docs/SOLVERS.md).

Acceptance contract of the parametric work: a sweep solved through one
symbolic elimination must agree with per-point ``direct`` solves to
1e-9 at every point, dense ``auto`` sweeps engage the fast path while
the paper's coarse figures keep their bit-identical per-point solves,
an explicit ``parametric`` request degrades to the deterministic
fallback chain whenever elimination is impossible, and the runtime
trimmings (workers, checkpoints, cache stats, solver records) treat a
parametric sweep exactly like a concrete one.
"""

import random

import numpy as np
import pytest
from scipy import sparse

from repro.core.methodology import (
    PARAMETRIC_AUTO_THRESHOLD,
    IncrementalMethodology,
)
from repro.ctmc import ParametricOptions, build_parametric_solution
from repro.ctmc.parametric import dependent_consts
from repro.ctmc.solvers import (
    SOLVER_ENV_VAR,
    available_solvers,
    resolve_method,
    solve_steady_state,
    solver_choices,
)
from repro.errors import CheckpointError, ParametricError, SolverError
from repro.runtime import (
    StructuralStateSpaceCache,
    SweepCheckpoint,
    sweep_fingerprint,
)

#: (parameter, low, high) per case — the ranges the paper's figures sweep.
SWEEP_RANGES = {
    "rpc": ("shutdown_timeout", 0.5, 25.0),
    "streaming": ("awake_period", 10.0, 100.0),
}

#: Per-point agreement gate between parametric and direct solves.
AGREEMENT_TOLERANCE = 1e-9


@pytest.fixture
def families(rpc_family, streaming_family):
    return {"rpc": rpc_family, "streaming": streaming_family}


def _random_points(case, count=5):
    """Deterministically seeded 'random' sweep points inside the range."""
    parameter, low, high = SWEEP_RANGES[case]
    rng = random.Random(f"parametric:{case}")
    return parameter, [
        round(rng.uniform(low, high), 3) for _ in range(count)
    ]


def _assert_series_close(parametric, direct):
    assert set(parametric) == set(direct)
    for name in direct:
        for ours, reference in zip(parametric[name], direct[name]):
            scale = max(1.0, abs(reference))
            assert abs(ours - reference) <= AGREEMENT_TOLERANCE * scale, (
                f"{name}: parametric {ours!r} vs direct {reference!r}"
            )


def birth_death_generator(rates_up, rates_down) -> sparse.csr_matrix:
    """Tiny irreducible generator submatrix for registry-level tests."""
    n = len(rates_up) + 1
    rows, cols, data = [], [], []
    diagonal = np.zeros(n)
    for i, rate in enumerate(rates_up):
        rows.append(i)
        cols.append(i + 1)
        data.append(rate)
        diagonal[i] -= rate
    for i, rate in enumerate(rates_down):
        rows.append(i + 1)
        cols.append(i)
        data.append(rate)
        diagonal[i + 1] -= rate
    for i in range(n):
        rows.append(i)
        cols.append(i)
        data.append(diagonal[i])
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


@pytest.mark.parametrize("case", sorted(SWEEP_RANGES))
class TestParametricVsDirect:
    """The differential oracle: one elimination vs per-point solves."""

    def test_agrees_at_random_sweep_points(self, case, families):
        parameter, points = _random_points(case)
        parametric_methodology = IncrementalMethodology(families[case])
        parametric = parametric_methodology.sweep_markovian(
            parameter, points, method="parametric"
        )
        direct = IncrementalMethodology(families[case]).sweep_markovian(
            parameter, points, method="direct"
        )
        _assert_series_close(parametric, direct)
        # Non-vacuous: every point really went through the fast path,
        # with the validated fit error inside the residual contract.
        records = parametric_methodology.solver_records
        assert len(records) == len(points)
        for record in records:
            assert record["method"] == "parametric"
            assert record["iterations"] == 0
            assert record["residual"] < 1e-8
            assert record["fallbacks"] == []

    def test_domain_endpoints_are_exact_enough(self, case, families):
        """The sweep's min/max define the fitted domain — no edge drift."""
        parameter, low, high = SWEEP_RANGES[case]
        points = [low, (low + high) / 2.0, high]
        parametric = IncrementalMethodology(families[case]).sweep_markovian(
            parameter, points, method="parametric"
        )
        direct = IncrementalMethodology(families[case]).sweep_markovian(
            parameter, points, method="direct"
        )
        _assert_series_close(parametric, direct)


class TestAutoThreshold:
    """Dense auto sweeps go parametric; the paper's coarse ones do not."""

    def test_dense_auto_sweep_uses_parametric(self, rpc_family):
        parameter, low, high = SWEEP_RANGES["rpc"]
        count = PARAMETRIC_AUTO_THRESHOLD
        step = (high - low) / (count - 1)
        values = [low + index * step for index in range(count)]
        methodology = IncrementalMethodology(rpc_family)
        methodology.sweep_markovian(parameter, values)  # method=auto
        stats = methodology.runtime_stats()
        assert stats["solver"]["backends"] == {"parametric": count}
        assert stats["solver"]["max_residual"] < 1e-8

    def test_coarse_auto_sweep_stays_concrete(self, rpc_family):
        parameter, points = _random_points("rpc", count=3)
        methodology = IncrementalMethodology(rpc_family)
        methodology.sweep_markovian(parameter, points)  # method=auto
        backends = methodology.runtime_stats()["solver"]["backends"]
        assert "parametric" not in backends
        assert methodology.cache.stats.parametric_builds == 0


class TestRegistry:
    """``parametric`` resolves everywhere a backend name is accepted."""

    def test_solver_choices_include_parametric(self):
        assert "parametric" in solver_choices()

    def test_resolve_method_accepts_parametric(self):
        assert resolve_method("parametric") == "parametric"

    def test_environment_variable_selects_parametric(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV_VAR, "parametric")
        assert resolve_method(None) == "parametric"

    def test_concrete_solve_falls_back_deterministically(self):
        """A concrete (matrix-level) solve cannot be parametric: the

        request degrades along the fallback chain and the report says
        so instead of silently pretending.
        """
        q = birth_death_generator([1.0, 2.0], [3.0, 1.0])
        solution = solve_steady_state(q, method="parametric")
        assert solution.report.method in available_solvers()
        assert solution.report.fallbacks[0] == "parametric"
        reference = solve_steady_state(q, method="direct")
        assert float(np.abs(solution.pi - reference.pi).max()) < 1e-9


class TestForcedParametricFallback:
    """Explicit ``parametric`` requests that cannot eliminate still work."""

    def test_structural_parameter_falls_back_per_point(self, rpc_family):
        # loss_prob feeds immediate-choice weights: the state space
        # changes shape with it, so no skeleton (and no elimination)
        # can cover the sweep.
        points = [0.01, 0.05, 0.10]
        methodology = IncrementalMethodology(rpc_family)
        series = methodology.sweep_markovian(
            "loss_prob", points, method="parametric"
        )
        reference = IncrementalMethodology(rpc_family).sweep_markovian(
            "loss_prob", points, method="direct"
        )
        _assert_series_close(series, reference)
        for record in methodology.solver_records:
            assert record["method"] != "parametric"
            assert record["fallbacks"][0] == "parametric"

    def test_disabled_cache_falls_back_per_point(self, rpc_family):
        parameter, points = _random_points("rpc", count=3)
        methodology = IncrementalMethodology(
            rpc_family,
            statespace_cache=StructuralStateSpaceCache(enabled=False),
        )
        series = methodology.sweep_markovian(
            parameter, points, method="parametric"
        )
        reference = IncrementalMethodology(rpc_family).sweep_markovian(
            parameter, points, method="direct"
        )
        _assert_series_close(series, reference)
        for record in methodology.solver_records:
            assert record["fallbacks"][0] == "parametric"


class TestRuntimeIntegration:
    def test_parallel_sweep_bit_identical_to_serial(self, rpc_family):
        parameter, points = _random_points("rpc")
        serial = IncrementalMethodology(rpc_family).sweep_markovian(
            parameter, points, method="parametric", workers=1
        )
        parallel = IncrementalMethodology(rpc_family).sweep_markovian(
            parameter, points, method="parametric", workers=4
        )
        # ==, not approx: the same pickled solution evaluates the same
        # barycentric formula whichever process runs the point.
        assert serial == parallel

    def test_solution_is_built_once_then_cache_hit(self, rpc_family):
        parameter, points = _random_points("rpc")
        methodology = IncrementalMethodology(rpc_family)
        first = methodology.sweep_markovian(
            parameter, points, method="parametric"
        )
        second = methodology.sweep_markovian(
            parameter, points, method="parametric"
        )
        assert first == second
        stats = methodology.cache.stats
        assert stats.parametric_builds == 1
        assert stats.parametric_hits == 1
        assert methodology.cache.stats.as_dict()["parametric_builds"] == 1

    def test_checkpoint_fingerprint_embeds_parametric(
        self, tmp_path, rpc_family
    ):
        parameter, points = _random_points("rpc")
        journal = tmp_path / "sweep.jsonl"
        baseline_methodology = IncrementalMethodology(rpc_family)
        baseline = baseline_methodology.sweep_markovian(
            parameter, points, method="parametric",
            checkpoint=str(journal),
        )
        # The journal's identity carries the *resolved* method: a
        # per-point ``direct`` resume must be refused outright ...
        with pytest.raises(CheckpointError):
            SweepCheckpoint(
                journal,
                sweep_fingerprint(
                    family=rpc_family.name, max_states=200_000,
                    kind="markovian", variant="dpm",
                    parameter=parameter, values=points,
                    const_overrides=[], method="direct",
                ),
            ).load()
        # ... while a parametric resume replays every point unchanged.
        resumed_methodology = IncrementalMethodology(rpc_family)
        resumed = resumed_methodology.sweep_markovian(
            parameter, points, method="parametric",
            checkpoint=str(journal),
        )
        assert resumed == baseline
        assert resumed_methodology.tracer.checkpoint_hits == len(points)


class TestSolutionObject:
    @pytest.fixture(scope="class")
    def rpc_solution(self, rpc_family):
        archi = rpc_family.markovian_dpm
        cache = StructuralStateSpaceCache()
        parameter, low, high = SWEEP_RANGES["rpc"]
        skeleton = cache.skeleton(archi, None, 200_000)
        return build_parametric_solution(
            archi,
            skeleton,
            parameter,
            rpc_family.measures,
            (low, high),
            archi.bind_constants(None),
        )

    def test_evaluate_many_matches_scalar_evaluate(self, rpc_solution):
        low, high = rpc_solution.domain
        grid = np.linspace(low, high, 17)
        vectorized = rpc_solution.evaluate_many(grid)
        for position, value in enumerate(grid):
            scalar = rpc_solution.evaluate(float(value))
            for name in rpc_solution.measure_names:
                assert scalar[name] == pytest.approx(
                    float(vectorized[name][position]), rel=1e-12, abs=0.0
                )

    def test_report_dict_is_solver_record_shaped(self, rpc_solution):
        record = rpc_solution.report_dict()
        assert record["method"] == "parametric"
        assert record["size"] > 0
        assert record["nnz"] > 0
        assert record["iterations"] == 0
        assert record["residual"] == rpc_solution.max_fit_error
        assert record["mass_defect"] == 0.0
        assert record["fallbacks"] == []

    def test_diagnostics_describe_the_elimination(self, rpc_solution):
        diagnostics = rpc_solution.diagnostics
        assert diagnostics["recurrent"] == rpc_solution.size
        assert diagnostics["parametric_transitions"] > 0
        assert diagnostics["atoms"] >= 1
        assert diagnostics["fill_ops"] >= 0
        assert set(diagnostics["support"]) == set(
            rpc_solution.measure_names
        )

    def test_out_of_domain_evaluation_is_refused(self, rpc_solution):
        low, high = rpc_solution.domain
        with pytest.raises(ParametricError, match="outside the fitted"):
            rpc_solution.evaluate(high + 1.0)
        with pytest.raises(ParametricError, match="outside the fitted"):
            rpc_solution.evaluate(low - 1.0)

    def test_degenerate_domain_is_refused(self, rpc_family):
        archi = rpc_family.markovian_dpm
        cache = StructuralStateSpaceCache()
        skeleton = cache.skeleton(archi, None, 200_000)
        with pytest.raises(ParametricError, match="non-degenerate"):
            build_parametric_solution(
                archi, skeleton, "shutdown_timeout",
                rpc_family.measures, (5.0, 5.0),
                archi.bind_constants(None),
            )

    def test_state_budget_aborts_with_recoverable_error(self, rpc_family):
        archi = rpc_family.markovian_dpm
        cache = StructuralStateSpaceCache()
        skeleton = cache.skeleton(archi, None, 200_000)
        with pytest.raises(ParametricError) as info:
            build_parametric_solution(
                archi, skeleton, "shutdown_timeout",
                rpc_family.measures, (0.5, 25.0),
                archi.bind_constants(None),
                options=ParametricOptions(max_states=4),
            )
        assert info.value.reason == "budget"
        assert isinstance(info.value, SolverError)

    def test_options_require_enough_nodes(self):
        with pytest.raises(ParametricError, match="at least 8"):
            ParametricOptions(nodes=4)


class TestDependentConsts:
    def test_independent_parameter_has_no_dependents(self, rpc_family):
        archi = rpc_family.markovian_dpm
        assert dependent_consts(archi, "shutdown_timeout") == frozenset()

    def test_dependence_propagates_through_defaults(self):
        from types import SimpleNamespace

        from repro.aemilia.expressions import BinaryOp, Literal, Variable

        archi = SimpleNamespace(
            const_params=[
                SimpleNamespace(name="base", default=Literal(2.0)),
                SimpleNamespace(
                    name="derived",
                    default=BinaryOp("*", Variable("base"), Literal(3.0)),
                ),
                # Chained: depends on base only through derived.
                SimpleNamespace(
                    name="chained",
                    default=BinaryOp(
                        "+", Variable("derived"), Literal(1.0)
                    ),
                ),
                SimpleNamespace(name="other", default=Literal(1.0)),
            ]
        )
        assert dependent_consts(archi, "base") == frozenset(
            {"derived", "chained"}
        )
        assert dependent_consts(archi, "other") == frozenset()

"""Tests for rate values and syntactic rate specifications."""

import pytest

from repro.aemilia.expressions import Literal, Variable, binop
from repro.aemilia.rates import (
    ExpRate,
    ExpSpec,
    GeneralRate,
    GeneralSpec,
    ImmediateRate,
    ImmediateSpec,
    PassiveRate,
    PassiveSpec,
    rate_as_distribution,
)
from repro.distributions import Deterministic, Exponential, Normal
from repro.errors import SpecificationError


class TestConcreteRates:
    def test_exp_rate_positive(self):
        assert ExpRate(2.0).rate == 2.0

    def test_exp_rate_rejects_nonpositive(self):
        with pytest.raises(SpecificationError):
            ExpRate(0.0)
        with pytest.raises(SpecificationError):
            ExpRate(-1.0)
        with pytest.raises(SpecificationError):
            ExpRate(float("inf"))

    def test_immediate_rate_defaults(self):
        rate = ImmediateRate()
        assert rate.priority == 1
        assert rate.weight == 1.0

    def test_immediate_priority_validated(self):
        with pytest.raises(SpecificationError):
            ImmediateRate(priority=0)

    def test_immediate_weight_validated(self):
        with pytest.raises(SpecificationError):
            ImmediateRate(weight=0.0)

    def test_passive_defaults(self):
        rate = PassiveRate()
        assert not rate.is_active
        assert rate.weight == 1.0

    def test_passive_weight_validated(self):
        with pytest.raises(SpecificationError):
            PassiveRate(weight=-1.0)

    def test_general_rate_exponential_equivalent(self):
        general = GeneralRate(Deterministic(4.0))
        assert general.exponential_equivalent() == ExpRate(0.25)

    def test_rate_strings(self):
        assert str(ExpRate(2.0)) == "exp(2)"
        assert str(ImmediateRate(1, 0.5)) == "inf(1, 0.5)"
        assert str(PassiveRate()) == "_"
        assert "det(3" in str(GeneralRate(Deterministic(3.0)))

    def test_rate_as_distribution(self):
        assert rate_as_distribution(ExpRate(2.0)) == Exponential(2.0)
        assert rate_as_distribution(
            GeneralRate(Normal(1.0, 0.1))
        ) == Normal(1.0, 0.1)
        with pytest.raises(SpecificationError):
            rate_as_distribution(PassiveRate())


class TestRateSpecs:
    def test_exp_spec_evaluates_expression(self):
        spec = ExpSpec(binop("/", Literal(1), Variable("mean")))
        assert spec.evaluate({"mean": 4.0}) == ExpRate(0.25)

    def test_exp_spec_free_variables(self):
        spec = ExpSpec(Variable("mean"))
        assert spec.free_variables() == frozenset({"mean"})

    def test_exp_spec_rejects_boolean(self):
        spec = ExpSpec(Literal(True))
        with pytest.raises(SpecificationError, match="numeric"):
            spec.evaluate({})

    def test_immediate_spec_defaults(self):
        assert ImmediateSpec().evaluate({}) == ImmediateRate(1, 1.0)

    def test_immediate_spec_with_expressions(self):
        spec = ImmediateSpec(Literal(2), Variable("w"))
        assert spec.evaluate({"w": 0.25}) == ImmediateRate(2, 0.25)

    def test_immediate_spec_real_priority_rejected(self):
        spec = ImmediateSpec(Literal(1.5), Literal(1.0))
        with pytest.raises(SpecificationError, match="integer"):
            spec.evaluate({})

    def test_passive_spec_defaults(self):
        assert PassiveSpec().evaluate({}) == PassiveRate(0, 1.0)

    def test_general_spec_builds_distribution(self):
        spec = GeneralSpec("normal", (Variable("m"), Literal(0.1)))
        rate = spec.evaluate({"m": 0.8})
        assert isinstance(rate, GeneralRate)
        assert rate.distribution == Normal(0.8, 0.1)

    def test_general_spec_exp_keyword_yields_exp_rate(self):
        """exp() written in a general model stays a plain exponential."""
        spec = GeneralSpec("exp", (Literal(2.0),))
        assert spec.evaluate({}) == ExpRate(2.0)

    def test_general_spec_unknown_keyword_rejected_eagerly(self):
        with pytest.raises(SpecificationError, match="unknown distribution"):
            GeneralSpec("zeta", (Literal(1.0),))

    def test_general_spec_free_variables(self):
        spec = GeneralSpec("normal", (Variable("m"), Variable("s")))
        assert spec.free_variables() == frozenset({"m", "s"})

    def test_spec_strings(self):
        assert str(ExpSpec(Literal(2.0))) == "exp(2.0)"
        assert str(PassiveSpec()) == "_"
        assert "normal" in str(GeneralSpec("normal", (Literal(1.0), Literal(0.1))))

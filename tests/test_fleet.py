"""Differential and property tests of the fleet compositional engine.

Three independently built representations of the same N-device fleet —
the flat BFS oracle (:mod:`repro.fleet.flat`), the Kronecker product
generator and the exchangeability-lumped operator — must agree on every
reward measure to 1e-9 at the sizes where the flat chain is tractable
(N in {2, 3, 4}).  Exchangeability itself is checked as a hypothesis
property: permuting which device sits on which product axis leaves
every fleet measure unchanged, even for heterogeneous device rates.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.casestudies.fleet import (
    DEFAULT_PARAMETERS,
    POLICIES,
    build_model,
    coordinator_automaton,
    device_automaton,
    measures as fleet_measures,
    policy as resolve_policy,
    sync_events,
)
from repro.ctmc.solvers import solve_steady_state
from repro.ctmc.steady_state import steady_state_solution
from repro.errors import SpecificationError, StateSpaceLimitError
from repro.fleet import (
    FleetAssessment,
    LumpedFleet,
    build_flat_topology,
    build_product,
    evaluate_flat,
    evaluate_product,
    multisets,
    permuted_product,
    product_generator,
    solve_fleet,
)
from repro.obs.metrics import (
    FLEET_DEVICES,
    FLEET_MATVECS,
    FLEET_PRODUCT_STATES,
    MetricRegistry,
    use_registry,
)

AGREEMENT = 1e-9


def flat_oracle_measures(model):
    """Measures from the independent flat-enumeration oracle.

    Solved with the SOR backend: product-structured chains suffer
    catastrophic ILU/LU fill-in, and SOR is also fully disjoint from
    the matrix-free gmres/power paths under test.
    """
    flat = build_flat_topology(model.topology)
    solution = steady_state_solution(flat.ctmc, method="sor")
    return evaluate_flat(model.measures, solution.pi, flat)


def assert_measures_close(left, right, tolerance=AGREEMENT):
    assert set(left) == set(right)
    for name in left:
        assert left[name] == pytest.approx(
            right[name], abs=tolerance
        ), f"measure {name!r}: {left[name]} != {right[name]}"


class TestDifferential:
    """Flat oracle vs Kronecker product vs exchangeability lumping."""

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_lumped_matches_flat_n2_all_policies(self, policy):
        model = build_model(2, policy)
        lumped = solve_fleet(model.topology, model.measures).measures
        assert_measures_close(lumped, flat_oracle_measures(model))

    @pytest.mark.parametrize("n", [3, 4])
    @pytest.mark.parametrize("policy", ["balanced", "emergency"])
    def test_lumped_matches_flat_larger_fleets(self, n, policy):
        model = build_model(n, policy)
        lumped = solve_fleet(model.topology, model.measures).measures
        assert_measures_close(lumped, flat_oracle_measures(model))

    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("policy", ["balanced", "staggered"])
    def test_product_matches_flat(self, n, policy):
        model = build_model(n, policy)
        product = solve_fleet(
            model.topology, model.measures, representation="product"
        ).measures
        assert_measures_close(product, flat_oracle_measures(model))

    def test_product_distribution_projects_onto_lumped(self):
        model = build_model(3, "balanced")
        product = solve_fleet(
            model.topology,
            model.measures,
            representation="product",
            keep_distribution=True,
        )
        lumped = solve_fleet(
            model.topology,
            model.measures,
            representation="lumped",
            keep_distribution=True,
        )
        projected = LumpedFleet(model.topology).project(product.pi)
        np.testing.assert_allclose(
            projected, lumped.pi, atol=AGREEMENT
        )


class TestLumping:
    def test_lumped_size_is_multiset_counting(self):
        for n in (1, 2, 5, 9):
            model = build_model(n, "balanced")
            d = model.topology.device.num_states
            c = model.topology.coordinator.num_states
            expected = c * math.comb(n + d - 1, d - 1)
            assert model.topology.lumped_states == expected
            lumped = LumpedFleet(model.topology)
            assert lumped.operator().shape == (expected, expected)

    def test_multisets_enumeration(self):
        counts = multisets(3, 2)
        assert len(counts) == math.comb(2 + 3 - 1, 3 - 1)
        assert all(sum(count) == 2 for count in counts)
        assert len(set(counts)) == len(counts)

    def test_product_space_grows_exponentially_lumped_polynomially(self):
        small = build_model(4, "balanced").topology
        large = build_model(8, "balanced").topology
        d = small.device.num_states
        # Doubling N multiplies the product space by |S|^N but the
        # lumped multiset space (a degree d-1 polynomial in N) by at
        # most 2^(d-1).
        assert large.product_states == small.product_states * d**4
        assert large.lumped_states < small.lumped_states * 2 ** (d - 1)
        assert large.lumped_states * 100 < large.product_states


class TestPolicies:
    def test_handoffs_only_under_emergency(self):
        for policy in sorted(POLICIES):
            model = build_model(2, policy)
            measures = solve_fleet(model.topology, model.measures).measures
            if policy == "emergency":
                assert measures["handoffs"] > 0.0
            else:
                assert measures["handoffs"] == 0.0

    def test_staggered_wakeups_below_balanced(self):
        balanced = build_model(3, "balanced")
        staggered = build_model(3, "staggered")
        wake_balanced = solve_fleet(
            balanced.topology, balanced.measures
        ).measures["wakeups"]
        wake_staggered = solve_fleet(
            staggered.topology, staggered.measures
        ).measures["wakeups"]
        assert 0.0 < wake_staggered < wake_balanced

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecificationError):
            build_model(2, "frantic")


class TestExchangeability:
    """Permuting device axes never changes a fleet measure."""

    @staticmethod
    def _heterogeneous_devices(factors):
        return tuple(
            device_automaton(
                DEFAULT_PARAMETERS.override(
                    {"service_time": 0.2 * factor, "drain_rate": 0.05 * factor}
                )
            )
            for factor in factors
        )

    @given(
        permutation=st.permutations(list(range(3))),
        factors=st.lists(
            st.sampled_from([0.5, 1.0, 2.0]), min_size=3, max_size=3
        ),
    )
    @settings(max_examples=5, deadline=None)
    def test_device_permutation_leaves_measures_unchanged(
        self, permutation, factors
    ):
        chosen = resolve_policy("balanced")
        coordinator = coordinator_automaton(DEFAULT_PARAMETERS, chosen)
        events = sync_events(chosen)
        devices = self._heterogeneous_devices(factors)
        measures = fleet_measures(DEFAULT_PARAMETERS)

        base = product_generator(coordinator, devices, events)
        shuffled = permuted_product(devices, coordinator, events, permutation)
        base_pi = solve_steady_state(base.generator.operator()).pi
        shuffled_pi = solve_steady_state(shuffled.generator.operator()).pi
        assert_measures_close(
            evaluate_product(measures, base_pi, base),
            evaluate_product(measures, shuffled_pi, shuffled),
        )

    def test_invalid_permutation_rejected(self):
        chosen = resolve_policy("balanced")
        coordinator = coordinator_automaton(DEFAULT_PARAMETERS, chosen)
        devices = self._heterogeneous_devices([1.0, 1.0])
        with pytest.raises(SpecificationError):
            permuted_product(
                devices, coordinator, sync_events(chosen), [0, 0]
            )


class TestFlatOracle:
    def test_flat_enumeration_is_size_gated(self):
        model = build_model(4, "balanced")
        with pytest.raises(StateSpaceLimitError):
            build_flat_topology(model.topology, max_states=100)

    def test_flat_reaches_all_dynamically_possible_states(self):
        # The flat oracle enumerates reachable states only.  At N=2 the
        # sole unreachable combinations are "queue empty while every
        # device is awaking": a wake fires only on a backlogged queue,
        # and awaking devices cannot drain it.
        model = build_model(2, "balanced")
        flat = build_flat_topology(model.topology)
        assert len(flat.states) == model.topology.product_states - 4
        awaking = {
            index
            for index, name in enumerate(model.topology.device.state_names)
            if name.startswith("awaking")
        }
        empty_queue = model.topology.coordinator.state_index("queue_0")
        reached = set(flat.states)
        for c in range(model.topology.coordinator.num_states):
            for pair in itertools.product(
                range(model.topology.device.num_states), repeat=2
            ):
                state = (c, pair)
                if state not in reached:
                    assert c == empty_queue
                    assert set(pair) <= awaking


class TestAssessment:
    """The sweep driver: determinism, checkpoints, metrics."""

    def test_sweep_workers_bit_identical(self):
        values = [0.5, 1.5, 3.0]
        serial = FleetAssessment(2, workers=1).sweep("arrival_rate", values)
        parallel = FleetAssessment(2, workers=2).sweep(
            "arrival_rate", values
        )
        assert serial == parallel

    def test_sweep_checkpoint_resume_bit_identical(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        values = [0.5, 1.5]
        first = FleetAssessment(2).sweep(
            "arrival_rate", values, checkpoint=journal
        )
        resumed_assessment = FleetAssessment(2)
        resumed = resumed_assessment.sweep(
            "arrival_rate", values, checkpoint=journal
        )
        assert first == resumed
        assert resumed_assessment.tracer.checkpoint_hits == len(values)

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(SpecificationError):
            FleetAssessment(2).sweep("warp_factor", [1.0])

    def test_solver_and_operator_records_accumulate(self):
        assessment = FleetAssessment(2, representation="product")
        series = assessment.sweep("arrival_rate", [1.0, 2.0])
        assert len(assessment.solver_records) == 2
        assert len(assessment.operator_records) == 2
        record = assessment.operator_records[0]
        assert record["representation"] == "product"
        assert record["states"] == record["product_states"]
        assert record["matvecs"] > 0
        assert all(len(points) == 2 for points in series.values())

    def test_fleet_metrics_recorded(self):
        registry = MetricRegistry()
        with use_registry(registry):
            model = build_model(3, "balanced")
            solve_fleet(model.topology, model.measures)
        snapshot = registry.snapshot()
        devices = snapshot[FLEET_DEVICES.name]["series"][0]["value"]
        assert devices == 3
        product_states = snapshot[FLEET_PRODUCT_STATES.name]["series"][0][
            "value"
        ]
        assert product_states == model.topology.product_states
        matvec_series = snapshot[FLEET_MATVECS.name]["series"]
        assert matvec_series[0]["labels"] == {"representation": "lumped"}
        assert matvec_series[0]["value"] > 0

"""Round-trip tests: parse(pretty(archi)) is semantically the original.

The strongest available equality is used per model class: identical
state/transition counts plus strong bisimilarity of the generated state
spaces (rates included for the timed models via Markovian-signature
bisimulation on the untimed check where applicable).
"""

import pytest

from repro.aemilia import generate_lts, parse_architecture
from repro.aemilia.pretty import (
    print_architecture,
    print_behavior,
    print_expression,
    print_rate,
)
from repro.aemilia import builder as b
from repro.aemilia.expressions import Literal, Variable, binop
from repro.lts import strongly_bisimilar


def roundtrip(archi, const_overrides=None):
    text = print_architecture(archi)
    reparsed = parse_architecture(text)
    original_lts = generate_lts(archi, const_overrides)
    reparsed_lts = generate_lts(reparsed, const_overrides)
    assert original_lts.num_states == reparsed_lts.num_states
    assert original_lts.num_transitions == reparsed_lts.num_transitions
    assert strongly_bisimilar(original_lts, reparsed_lts, markovian=True)
    return reparsed


class TestExpressionPrinting:
    def test_literals(self):
        assert print_expression(Literal(3)) == "3"
        assert print_expression(Literal(2.5)) == "2.5"
        assert print_expression(Literal(True)) == "true"

    def test_nested_operations_parenthesised(self):
        expr = binop("*", binop("+", Variable("n"), 1), 2)
        assert print_expression(expr) == "((n + 1) * 2)"

    def test_printed_expression_reparses(self):
        from repro.aemilia.lexer import tokenize

        expr = binop("and", binop("<", Variable("n"), 3), Literal(True))
        tokens = tokenize(print_expression(expr))
        assert tokens[-1].kind == "EOF"


class TestRatePrinting:
    def test_default_passive_is_underscore(self):
        assert print_rate(b.passive()) == "_"

    def test_weighted_passive(self):
        assert print_rate(b.passive(0, 3.0)) == "_(0, 3.0)"

    def test_exp_and_immediate(self):
        assert print_rate(b.exp(2.0)) == "exp(2.0)"
        assert print_rate(b.imm(2, 0.5)) == "inf(2, 0.5)"

    def test_general(self):
        assert print_rate(b.gen("normal", 0.8, 0.03)) == "normal(0.8, 0.03)"


class TestBehaviorPrinting:
    def test_prefix_chain(self):
        term = b.prefix("a", b.passive(), b.prefix("b", b.exp(1.0), b.call("P")))
        assert print_behavior(term) == "<a, _> . <b, exp(1.0)> . P()"

    def test_choice_multiline(self):
        term = b.choice(
            b.prefix("a", b.passive(), b.stop()),
            b.prefix("c", b.passive(), b.call("P")),
        )
        text = print_behavior(term)
        assert text.startswith("choice {")
        assert "<a, _> . stop" in text

    def test_guard(self):
        term = b.cond(binop(">", Variable("n"), 0), b.prefix("a", b.passive(), b.stop()))
        assert print_behavior(term).startswith("cond((n > 0)) ->")


class TestRoundTrips:
    def test_pingpong(self, pingpong):
        roundtrip(pingpong)

    def test_mm1k(self, mm1k):
        reparsed = roundtrip(mm1k)
        assert [p.name for p in reparsed.const_params] == [
            "capacity", "arrival_rate", "service_rate",
        ]
        # Overrides must work on the reparsed architecture too.
        roundtrip(mm1k, {"capacity": 5})

    def test_rpc_functional_simplified(self):
        from repro.casestudies.rpc.functional import simplified_architecture

        roundtrip(simplified_architecture())

    def test_rpc_functional_revised(self):
        from repro.casestudies.rpc.functional import revised_architecture

        roundtrip(revised_architecture())

    def test_rpc_markovian_dpm(self, rpc_family):
        roundtrip(rpc_family.markovian_dpm)

    def test_rpc_general_dpm(self, rpc_family):
        roundtrip(rpc_family.general_dpm)

    def test_streaming_markovian_dpm_small(self, streaming_family):
        roundtrip(
            streaming_family.markovian_dpm,
            {"ap_capacity": 2, "b_capacity": 2},
        )

    def test_streaming_general_nodpm_small(self, streaming_family):
        roundtrip(
            streaming_family.general_nodpm,
            {"ap_capacity": 2, "b_capacity": 2},
        )

    def test_printed_text_is_stable(self, pingpong):
        """pretty(parse(pretty(x))) == pretty(x) — idempotence."""
        once = print_architecture(pingpong)
        twice = print_architecture(parse_architecture(once))
        assert once == twice

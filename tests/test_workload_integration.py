"""End-to-end tests of the workload subsystem through the methodology.

The contracts under test (ISSUE acceptance criteria):

* the case-study workload hooks exist and ``apply_workload`` rewrites
  them without touching anything else;
* trace-driven general sweeps are bit-identical across worker counts
  and across checkpoint resume — including a SIGKILL of the whole CLI
  process mid-sweep — and a journal written under one workload refuses
  to resume under another;
* replaying a generated exponential trace through the general-phase
  simulator reproduces the analytic Markovian measures for **both**
  case studies (trace cross-validation);
* the fig7 workload extension produces a Pareto front per class for
  Poisson / MMPP-bursty / Pareto heavy-tail workloads.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.aemilia.rates import GeneralRate
from repro.core.methodology import IncrementalMethodology
from repro.distributions import Exponential, Pareto
from repro.errors import AnalysisError, CheckpointError
from repro.experiments import rpc_figures
from repro.experiments.cli import main
from repro.workload import (
    MMPPGenerator,
    PoissonGenerator,
    TraceReplay,
    apply_workload,
    cross_validate_replay,
    write_trace,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Fast general-sweep settings shared by the in-process tests.
FAST = dict(run_length=800.0, runs=2, warmup=50.0)


@pytest.fixture(scope="module")
def rpc_general(rpc_family):
    return IncrementalMethodology(rpc_family).build_lts("general", "dpm")


@pytest.fixture(scope="module")
def mmpp_trace():
    return MMPPGenerator(2.0, 0.05, 5.0, 50.0).generate(
        600, seed=42
    ).rescaled(9.7)


class TestCaseStudyHooks:
    def test_rpc_hook_rewrites_only_processing_time(
        self, rpc_family, rpc_general
    ):
        workload = Pareto(1.5, 9.7 / 3.0)
        rewritten = apply_workload(
            rpc_general, rpc_family.workload_pattern, workload
        )
        replaced = [
            t
            for t in rewritten.transitions
            if isinstance(t.rate, GeneralRate)
            and t.rate.distribution is workload
        ]
        assert replaced
        assert all(
            "process_result_packet" in t.label for t in replaced
        )
        assert rewritten.num_states == rpc_general.num_states
        assert rewritten.num_transitions == rpc_general.num_transitions

    def test_streaming_hook_exists(self, streaming_family):
        # Presence check without building the (large) streaming LTS:
        # the methodology validates the hook against the family.
        assert streaming_family.workload_pattern == "S.produce_frame"
        IncrementalMethodology(
            streaming_family, workload=Exponential(1.0 / 67.0)
        )

    def test_workload_without_hook_is_rejected(self, rpc_family):
        import dataclasses

        hookless = dataclasses.replace(rpc_family, workload_pattern=None)
        with pytest.raises(AnalysisError, match="workload"):
            IncrementalMethodology(hookless, workload=Exponential(1.0))


class TestSweepDeterminism:
    """Same seed => same bits, no matter how the work is executed."""

    def test_trace_sweep_identical_across_worker_counts(
        self, rpc_family, mmpp_trace
    ):
        workload = TraceReplay(mmpp_trace, "cycle")
        serial = IncrementalMethodology(rpc_family).sweep_general(
            "shutdown_timeout", [5.0, 15.0], workload=workload, **FAST
        )
        parallel = IncrementalMethodology(
            rpc_family, workers=4
        ).sweep_general(
            "shutdown_timeout", [5.0, 15.0], workload=workload, **FAST
        )
        assert parallel == serial

    def test_workload_changes_the_results(self, rpc_family):
        plain = IncrementalMethodology(rpc_family).sweep_general(
            "shutdown_timeout", [5.0], **FAST
        )
        heavy = IncrementalMethodology(rpc_family).sweep_general(
            "shutdown_timeout", [5.0],
            workload=Pareto(1.5, 9.7 / 3.0), **FAST
        )
        assert plain != heavy

    def test_checkpoint_refuses_a_different_workload(
        self, rpc_family, mmpp_trace, tmp_path
    ):
        journal = str(tmp_path / "journal.jsonl")
        workload = TraceReplay(mmpp_trace)
        IncrementalMethodology(rpc_family).sweep_general(
            "shutdown_timeout", [5.0], workload=workload,
            checkpoint=journal, **FAST
        )
        with pytest.raises(CheckpointError):
            IncrementalMethodology(rpc_family).sweep_general(
                "shutdown_timeout", [5.0],
                workload=Pareto(1.5, 9.7 / 3.0),
                checkpoint=journal, **FAST
            )

    def test_checkpoint_resume_replays_trace_sweep_bit_identically(
        self, rpc_family, mmpp_trace, tmp_path
    ):
        journal = str(tmp_path / "journal.jsonl")
        workload = TraceReplay(mmpp_trace, "cycle")
        first = IncrementalMethodology(rpc_family).sweep_general(
            "shutdown_timeout", [5.0, 15.0], workload=workload,
            checkpoint=journal, **FAST
        )
        resumed_methodology = IncrementalMethodology(rpc_family)
        resumed = resumed_methodology.sweep_general(
            "shutdown_timeout", [5.0, 15.0], workload=workload,
            checkpoint=journal, **FAST
        )
        assert resumed == first
        assert resumed_methodology.tracer.checkpoint_hits == 2


class TestSweepWorkloads:
    CLASSES = [5.0, 15.0]

    def _workloads(self, trace):
        return {
            "poisson": Exponential(1.0 / 9.7),
            "mmpp": TraceReplay(trace, "cycle"),
            "pareto": Pareto(1.5, 9.7 / 3.0),
        }

    def test_grid_is_identical_serial_and_parallel(
        self, rpc_family, mmpp_trace
    ):
        workloads = self._workloads(mmpp_trace)
        serial = IncrementalMethodology(rpc_family).sweep_workloads(
            workloads, "shutdown_timeout", self.CLASSES, **FAST
        )
        parallel = IncrementalMethodology(
            rpc_family, workers=4
        ).sweep_workloads(
            workloads, "shutdown_timeout", self.CLASSES, **FAST
        )
        assert parallel == serial
        assert sorted(serial) == ["mmpp", "pareto", "poisson"]
        for name, series in serial.items():
            for values in series.values():
                assert len(values) == len(self.CLASSES)
        # Distinct workload shapes produce distinct series.
        assert serial["poisson"] != serial["pareto"]

    def test_empty_grid_is_rejected(self, rpc_family):
        with pytest.raises(AnalysisError, match="at least one"):
            IncrementalMethodology(rpc_family).sweep_workloads(
                {}, "shutdown_timeout", [5.0]
            )


class TestReplayCrossValidation:
    """Acceptance: replaying a generated exponential trace reproduces
    the analytic Markovian measures within confidence half-widths."""

    def test_rpc(self, rpc_family, rpc_general):
        report = cross_validate_replay(
            rpc_general,
            hook="C.process_result_packet",
            hook_rate=1.0 / 9.7,
            measures=rpc_family.measures,
            batch_length=2_000.0,
            batches=12,
            warmup=300.0,
        )
        assert report.passed, str(report)
        assert report.trace_events == 4000

    def test_streaming(self, streaming_family):
        lts = IncrementalMethodology(streaming_family).build_lts(
            "general", "dpm"
        )
        report = cross_validate_replay(
            lts,
            hook="S.produce_frame",
            hook_rate=1.0 / 67.0,
            measures=streaming_family.measures,
            batch_length=8_000.0,
            batches=12,
            warmup=300.0,
        )
        assert report.passed, str(report)


class TestFig7Workloads:
    """Acceptance: a Pareto front per workload class, resumable."""

    QUICK = dict(
        timeouts=[1.0, 5.0, 15.0], runs=2, run_length=1_500.0,
        warmup=100.0, trace_events=600,
    )

    def test_three_classes_each_with_a_front(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        figure = rpc_figures.fig7_workloads(
            checkpoint=journal, **self.QUICK
        )
        assert sorted(figure.curves) == ["mmpp", "pareto", "poisson"]
        for name, curve in figure.curves.items():
            front = curve.pareto_front()
            assert front, f"workload {name} produced an empty front"
            assert len(front) + len(curve.dominated_points()) == 3
        assert figure.workloads["mmpp"].startswith("replay:cycle:")
        assert figure.workloads["poisson"] == "exp(0.103093)"
        # Resume from the completed journal: same curves, all cached.
        resumed = rpc_figures.fig7_workloads(
            checkpoint=journal, **self.QUICK
        )
        for name in figure.curves:
            assert (
                resumed.curves[name].points == figure.curves[name].points
            )
        assert resumed.runtime.checkpoint_hits == 9

    def test_report_renders(self):
        figure = rpc_figures.fig7_workloads(
            timeouts=[5.0], runs=2, run_length=400.0, warmup=0.0,
            trace_events=200,
        )
        text = figure.report()
        assert "fig7-workloads" in text
        for name in ("poisson", "mmpp", "pareto"):
            assert f"workload {name}" in text


class TestWorkloadCLI:
    def test_generate_fit_replay_round_trip(self, tmp_path, capsys):
        trace_file = str(tmp_path / "wl.jsonl")
        assert main([
            "workload", "generate",
            "--generator", "mmpp:2,0.05,5,50",
            "--events", "300", "--seed", "9",
            "--rescale-mean", "9.7",
            "--out", trace_file,
        ]) == 0
        summary = json.loads(
            capsys.readouterr().out.rsplit("[trace", 1)[0]
        )
        assert summary["events"] == 300
        assert summary["mean"] == pytest.approx(9.7)

        fit_file = str(tmp_path / "fit.json")
        assert main([
            "workload", "fit", trace_file, "--out", fit_file,
        ]) == 0
        report = json.loads(Path(fit_file).read_text())
        assert report["trace"]["fingerprint"] == summary["fingerprint"]
        assert any(
            candidate["family"] == report["best"]
            for candidate in report["candidates"]
        )

        out_file = str(tmp_path / "replay.json")
        assert main([
            "workload", "replay", trace_file,
            "--case", "rpc", "--mode", "cycle",
            "--runs", "2", "--run-length", "400", "--warmup", "20",
            "--output", out_file,
        ]) == 0
        payload = json.loads(Path(out_file).read_text())
        assert payload["mode"] == "cycle"
        assert "energy" in payload["estimates"]

    def test_generate_rejects_bad_spec(self, tmp_path):
        assert main([
            "workload", "generate",
            "--generator", "zeta:1.0",
            "--out", str(tmp_path / "x.jsonl"),
        ]) == 1

    def test_fit_rejects_missing_trace(self, tmp_path):
        assert main([
            "workload", "fit", str(tmp_path / "missing.jsonl"),
        ]) == 1

    def test_workload_flag_rejects_bad_spec(self):
        with pytest.raises(SystemExit, match="--workload"):
            main(["fig3-general", "--quick", "--workload", "zeta:1.0"])


# ---------------------------------------------------------------------------
# The SIGKILL acceptance scenario, now with a trace-driven workload.
# ---------------------------------------------------------------------------


def _run_sweep_cli(extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "run-sweep", *extra],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _journal_completed(path):
    if not path.exists():
        return 0
    count = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            if record.get("kind") == "point":
                count += 1
    return count


class TestSigkillResumeWithWorkload:
    VALUES = "0.5,2.0,5.0,11.0,15.0,25.0"

    def _common(self, trace_file):
        return [
            "--case", "rpc", "--phase", "general",
            "--parameter", "shutdown_timeout", "--values", self.VALUES,
            "--runs", "2", "--run-length", "500", "--warmup", "25",
            "--workload", f"trace:{trace_file}:cycle",
        ]

    def test_sigkill_resume_is_bit_identical(self, tmp_path):
        trace_file = str(tmp_path / "workload.jsonl")
        write_trace(
            PoissonGenerator(1.0 / 9.7).generate(500, seed=13), trace_file
        )
        common = self._common(trace_file)

        baseline_out = tmp_path / "baseline.json"
        clean = _run_sweep_cli(common + ["--output", str(baseline_out)])
        assert clean.wait(timeout=180) == 0

        journal = tmp_path / "journal.jsonl"
        victim = _run_sweep_cli(
            common + [
                "--checkpoint", str(journal), "--workers", "4",
                "--chaos", "seed=1,delay=1.0,delay-seconds=0.3",
            ]
        )
        deadline = time.time() + 120
        while time.time() < deadline:
            if _journal_completed(journal) >= 1:
                break
            if victim.poll() is not None:
                pytest.fail("sweep finished before it could be killed")
            time.sleep(0.01)
        else:
            pytest.fail("no checkpoint record appeared before timeout")
        victim.kill()  # SIGKILL — no cleanup handlers run
        victim.wait(timeout=30)
        total = len(self.VALUES.split(","))
        completed = _journal_completed(journal)
        assert 1 <= completed < total, (
            f"kill landed outside the sweep: {completed}/{total} points"
        )

        resumed_out = tmp_path / "resumed.json"
        resumed = _run_sweep_cli(
            common + [
                "--checkpoint", str(journal), "--workers", "4",
                "--output", str(resumed_out),
            ]
        )
        assert resumed.wait(timeout=180) == 0
        assert resumed_out.read_bytes() == baseline_out.read_bytes()
        assert _journal_completed(journal) == total

"""Tests for ordinary CTMC lumping."""

import numpy as np
import pytest

from repro.aemilia import generate_lts
from repro.ctmc import (
    CTMC,
    build_ctmc,
    evaluate_measures,
    steady_state,
)
from repro.ctmc.lumping import lump, lumping_partition


def symmetric_chain():
    """A 2-fold symmetric chain: 0 -> {1, 2} -> 3 -> 0 with twin middles."""
    ctmc = CTMC(4)
    ctmc.add_transition(0, 1, 1.0, {"split": 1.0})
    ctmc.add_transition(0, 2, 1.0, {"split": 1.0})
    ctmc.add_transition(1, 3, 2.0, {"join": 1.0})
    ctmc.add_transition(2, 3, 2.0, {"join": 1.0})
    ctmc.add_transition(3, 0, 4.0, {"reset": 1.0})
    for state, labels in enumerate(
        [{"split"}, {"join"}, {"join"}, {"reset"}]
    ):
        ctmc.set_enabled_labels(state, frozenset(labels))
    return ctmc


class TestPartition:
    def test_twins_lump(self):
        blocks = lumping_partition(symmetric_chain())
        assert blocks[1] == blocks[2]
        assert blocks[0] != blocks[1]
        assert blocks[0] != blocks[3]

    def test_asymmetric_rates_do_not_lump(self):
        ctmc = symmetric_chain()
        ctmc.add_transition(1, 0, 0.5)  # break the symmetry
        blocks = lumping_partition(ctmc)
        assert blocks[1] != blocks[2]

    def test_different_enabled_labels_do_not_lump(self):
        ctmc = CTMC(3)
        ctmc.add_transition(0, 2, 1.0)
        ctmc.add_transition(1, 2, 1.0)
        ctmc.add_transition(2, 0, 1.0)
        ctmc.set_enabled_labels(0, frozenset({"a"}))
        ctmc.set_enabled_labels(1, frozenset({"b"}))
        blocks = lumping_partition(ctmc)
        assert blocks[0] != blocks[1]


class TestQuotient:
    def test_quotient_size_and_steady_state(self):
        ctmc = symmetric_chain()
        quotient, block_of = lump(ctmc)
        assert quotient.num_states == 3
        pi_full = steady_state(ctmc)
        pi_quotient = steady_state(quotient)
        # Block masses agree.
        for block in range(quotient.num_states):
            mass = sum(
                pi_full[s] for s in range(4) if block_of[s] == block
            )
            assert pi_quotient[block] == pytest.approx(mass, rel=1e-9)

    def test_initial_distribution_aggregates(self):
        ctmc = symmetric_chain()
        quotient, block_of = lump(ctmc)
        assert quotient.initial_distribution.sum() == pytest.approx(1.0)
        assert quotient.initial_distribution[block_of[0]] == pytest.approx(1.0)

    def test_measures_preserved_on_case_study(self, rpc_family):
        """Measures on the lumped rpc chain equal the full-chain values."""
        lts = generate_lts(
            rpc_family.markovian_dpm, {"shutdown_timeout": 5.0}
        )
        ctmc = build_ctmc(lts)
        quotient, _ = lump(ctmc)
        assert quotient.num_states <= ctmc.num_states
        full = evaluate_measures(
            ctmc, steady_state(ctmc), rpc_family.measures
        )
        reduced = evaluate_measures(
            quotient, steady_state(quotient), rpc_family.measures
        )
        for name in full:
            assert reduced[name] == pytest.approx(full[name], rel=1e-9)

    def test_streaming_chain_lumps_substantially(self, streaming_family):
        """The streaming model's symmetric structure shrinks under
        lumping (at reduced buffer sizes for test speed)."""
        lts = generate_lts(
            streaming_family.markovian_dpm,
            {"ap_capacity": 3, "b_capacity": 3, "awake_period": 100.0},
        )
        ctmc = build_ctmc(lts)
        quotient, _ = lump(ctmc)
        full = evaluate_measures(
            ctmc, steady_state(ctmc), streaming_family.measures
        )
        reduced = evaluate_measures(
            quotient, steady_state(quotient), streaming_family.measures
        )
        for name in full:
            assert reduced[name] == pytest.approx(
                full[name], rel=1e-8, abs=1e-12
            )

"""Tests for the experiment registry, figure regeneration and the CLI."""

import pytest

from repro.experiments import all_experiments, run_experiment
from repro.experiments.cli import build_parser, main
from repro.experiments.results import (
    FigureResult,
    constant_series,
    ratio_series,
)
from repro.experiments import rpc_figures, streaming_figures

EXPECTED_IDS = {
    "sec3-rpc",
    "sec3-streaming",
    "fig3-markov",
    "fig3-general",
    "fig4",
    "fig4-dense",
    "fig5",
    "fig6",
    "fig7",
    "fig7-workloads",
    "fig8",
    "streaming-validation",
    "tab-params",
    "ext-battery",
    "ext-fleet",
    "ext-sensitivity",
    "ext-survival",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(all_experiments()) == EXPECTED_IDS

    def test_experiments_carry_descriptions(self):
        for experiment in all_experiments().values():
            assert experiment.paper_artifact

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            run_experiment("fig99", quick=True)


class TestResultsHelpers:
    def test_constant_series(self):
        assert constant_series(3.0, 4) == [3.0, 3.0, 3.0, 3.0]

    def test_ratio_series_with_zero_denominator(self):
        assert ratio_series([1.0, 2.0], [2.0, 0.0]) == [0.5, 0.0]

    def test_figure_result_report_renders_tables_and_charts(self):
        figure = FigureResult(
            figure_id="figX",
            title="demo",
            parameter_name="p",
            parameter_values=[1.0, 2.0],
            dpm_series={"m": [0.1, 0.2]},
            nodpm_series={"m": [0.3, 0.3]},
            notes=["a note"],
        )
        text = figure.report()
        assert "figX" in text
        assert "m (DPM)" in text and "m (NO-DPM)" in text
        assert "note: a note" in text
        bare = figure.report(charts=False)
        assert "EXISTS" not in bare
        assert len(bare) < len(text)

    def test_figure_series_accessor(self):
        figure = FigureResult(
            "f", "t", "p", [1.0], {"m": [0.5]}, {"m": [0.6]}
        )
        assert figure.series("m") == [0.5]
        assert figure.series("m", "nodpm") == [0.6]


class TestCheapExperiments:
    def test_sec3_rpc_report(self):
        result = rpc_figures.sec3_noninterference()
        assert not result.simplified.holds
        assert result.revised.holds
        text = result.report()
        assert "FAILS" in text and "HOLDS" in text
        assert "C.send_rpc_packet#RCS.get_packet" in text

    def test_fig3_markov_quick(self):
        figure = rpc_figures.fig3_markov(timeouts=[1.0, 10.0])
        assert figure.parameter_values == [1.0, 10.0]
        assert len(figure.dpm_series["energy_per_request"]) == 2
        # NO-DPM baseline is constant across the sweep.
        nodpm = figure.nodpm_series["throughput"]
        assert nodpm[0] == nodpm[1]

    def test_fig4_quick(self):
        figure = streaming_figures.fig4_markov(awake_periods=[50.0, 400.0])
        assert set(figure.dpm_series) == {
            "energy_per_frame", "loss", "miss", "quality",
        }
        energy = figure.dpm_series["energy_per_frame"]
        assert energy[0] > energy[1]

    def test_params_table(self):
        text = run_experiment("tab-params", quick=True)
        assert "service time" in text
        assert "AP buffer size" in text


class TestDerivations:
    def test_streaming_indices(self):
        series = {
            "nic_power": [1.0],
            "frames_received": [0.01],
            "frames_produced": [0.015],
            "frames_lost": [0.0015],
            "frame_misses": [0.003],
            "frame_gets": [0.015],
        }
        derived = streaming_figures.derive_streaming(series)
        assert derived["energy_per_frame"][0] == pytest.approx(100.0)
        assert derived["loss"][0] == pytest.approx(0.1)
        assert derived["miss"][0] == pytest.approx(0.2)
        assert derived["quality"][0] == pytest.approx(0.8)


class TestCli:
    def test_parser_flags(self):
        args = build_parser().parse_args(["fig4", "--quick", "--no-charts"])
        assert args.experiment == "fig4"
        assert args.quick and args.no_charts

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3-markov" in out

    def test_run_single_experiment(self, capsys):
        assert main(["tab-params", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "tab-params done" in out

    def test_run_figure_with_charts(self, capsys):
        assert main(["fig3-markov", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig3-left" in out
        assert "|" in out  # chart frame

"""Unit and property tests for the typed expression language."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aemilia.expressions import (
    BinaryOp,
    DataType,
    FunctionCall,
    Literal,
    UnaryOp,
    Variable,
    binop,
    check_closed,
    evaluate_constant,
    lit,
    var,
)
from repro.errors import EvaluationError, TypeCheckError


class TestLiterals:
    def test_int_literal(self):
        assert Literal(3).evaluate({}) == 3

    def test_real_literal(self):
        assert Literal(2.5).evaluate({}) == 2.5

    def test_bool_literal(self):
        assert Literal(True).evaluate({}) is True

    def test_literal_has_no_free_variables(self):
        assert Literal(1).free_variables() == frozenset()

    def test_type_inference(self):
        assert Literal(1).infer_type({}) is DataType.INT
        assert Literal(1.0).infer_type({}) is DataType.REAL
        assert Literal(False).infer_type({}) is DataType.BOOL

    def test_str_renders_booleans_lowercase(self):
        assert str(Literal(True)) == "true"
        assert str(Literal(False)) == "false"


class TestVariables:
    def test_lookup(self):
        assert Variable("n").evaluate({"n": 7}) == 7

    def test_unbound_raises(self):
        with pytest.raises(EvaluationError, match="unbound variable 'n'"):
            Variable("n").evaluate({})

    def test_free_variables(self):
        assert Variable("x").free_variables() == frozenset({"x"})

    def test_undeclared_type_raises(self):
        with pytest.raises(TypeCheckError, match="undeclared variable"):
            Variable("x").infer_type({})


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 4, 3, 12),
            ("/", 7, 2, 3.5),
            ("%", 7, 3, 1),
            ("+", 1.5, 0.5, 2.0),
        ],
    )
    def test_operations(self, op, left, right, expected):
        assert binop(op, left, right).evaluate({}) == expected

    def test_division_of_ints_is_real(self):
        result = binop("/", 1, 3).evaluate({})
        assert isinstance(result, float)

    def test_exact_int_division_stays_int(self):
        assert binop("/", 6, 3).evaluate({}) == 2

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError, match="division by zero"):
            binop("/", 1, 0).evaluate({})

    def test_arithmetic_on_booleans_rejected(self):
        with pytest.raises(EvaluationError):
            binop("+", True, 1).evaluate({})

    def test_unary_minus(self):
        assert UnaryOp("-", lit(5)).evaluate({}) == -5

    def test_unary_minus_on_bool_rejected(self):
        with pytest.raises(EvaluationError):
            UnaryOp("-", lit(True)).evaluate({})

    def test_division_infers_real(self):
        assert binop("/", 4, 2).infer_type({}) is DataType.REAL

    def test_mixed_arithmetic_infers_real(self):
        assert binop("+", lit(1), lit(2.0)).infer_type({}) is DataType.REAL

    def test_int_arithmetic_infers_int(self):
        assert binop("*", 2, 3).infer_type({}) is DataType.INT


class TestComparisons:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 1, 2, False),
            (">=", 3, 2, True),
            ("=", 2, 2, True),
            ("!=", 2, 3, True),
        ],
    )
    def test_numeric_comparisons(self, op, left, right, expected):
        assert binop(op, left, right).evaluate({}) is expected

    def test_bool_equality(self):
        assert binop("=", True, True).evaluate({}) is True

    def test_bool_ordering_rejected(self):
        with pytest.raises(EvaluationError):
            binop("<", True, False).evaluate({})

    def test_mixed_bool_number_comparison_rejected(self):
        with pytest.raises(EvaluationError):
            binop("=", True, 1).evaluate({})

    def test_comparison_infers_bool(self):
        assert binop("<", 1, 2).infer_type({}) is DataType.BOOL


class TestBooleanConnectives:
    def test_and(self):
        assert binop("and", True, False).evaluate({}) is False

    def test_or(self):
        assert binop("or", True, False).evaluate({}) is True

    def test_not(self):
        assert UnaryOp("not", lit(False)).evaluate({}) is True

    def test_and_short_circuits(self):
        # The right side would raise if evaluated.
        expr = BinaryOp("and", Literal(False), Variable("missing"))
        assert expr.evaluate({}) is False

    def test_or_short_circuits(self):
        expr = BinaryOp("or", Literal(True), Variable("missing"))
        assert expr.evaluate({}) is True

    def test_and_requires_booleans(self):
        with pytest.raises(EvaluationError):
            binop("and", 1, 2).evaluate({})

    def test_not_requires_boolean(self):
        with pytest.raises(EvaluationError):
            UnaryOp("not", lit(3)).evaluate({})


class TestFunctions:
    @pytest.mark.parametrize(
        "name,args,expected",
        [
            ("min", (2, 5), 2),
            ("max", (2, 5), 5),
            ("abs", (-3,), 3),
            ("floor", (2.7,), 2),
            ("ceil", (2.1,), 3),
        ],
    )
    def test_builtins(self, name, args, expected):
        expr = FunctionCall(name, tuple(lit(a) for a in args))
        assert expr.evaluate({}) == expected

    def test_unknown_function(self):
        with pytest.raises(EvaluationError, match="unknown function"):
            FunctionCall("sqrt", (lit(4),)).evaluate({})

    def test_wrong_arity(self):
        with pytest.raises(EvaluationError, match="expects 2"):
            FunctionCall("min", (lit(1),)).evaluate({})

    def test_boolean_argument_rejected(self):
        with pytest.raises(EvaluationError):
            FunctionCall("abs", (lit(True),)).evaluate({})

    def test_floor_infers_int(self):
        assert FunctionCall("floor", (lit(2.5),)).infer_type({}) is DataType.INT

    def test_unknown_function_type_error(self):
        with pytest.raises(TypeCheckError):
            FunctionCall("sqrt", (lit(4),)).infer_type({})


class TestHelpers:
    def test_check_closed_accepts_bound(self):
        expr = binop("+", var("n"), 1)
        check_closed(expr, frozenset({"n"}), "test")

    def test_check_closed_rejects_unbound(self):
        expr = binop("+", var("n"), var("m"))
        with pytest.raises(TypeCheckError, match="m"):
            check_closed(expr, frozenset({"n"}), "test")

    def test_evaluate_constant_default_env(self):
        assert evaluate_constant(binop("*", 6, 7)) == 42

    def test_datatype_accepts_widening(self):
        assert DataType.REAL.accepts(DataType.INT)
        assert not DataType.INT.accepts(DataType.REAL)
        assert DataType.BOOL.accepts(DataType.BOOL)

    def test_datatype_parse(self):
        assert DataType.parse("int") is DataType.INT
        with pytest.raises(TypeCheckError):
            DataType.parse("float")

    def test_expressions_are_hashable(self):
        first = binop("+", var("n"), 1)
        second = binop("+", var("n"), 1)
        assert first == second
        assert hash(first) == hash(second)


@given(a=st.integers(-1000, 1000), b=st.integers(-1000, 1000))
def test_addition_matches_python(a, b):
    assert binop("+", a, b).evaluate({}) == a + b


@given(
    a=st.floats(-1e6, 1e6, allow_nan=False),
    b=st.floats(-1e6, 1e6, allow_nan=False),
)
def test_comparison_matches_python(a, b):
    assert binop("<=", a, b).evaluate({}) == (a <= b)


@given(
    a=st.integers(-100, 100),
    b=st.integers(-100, 100),
    n=st.integers(-50, 50),
)
def test_substitution_consistency(a, b, n):
    """Evaluating with env == evaluating the substituted literal form."""
    with_var = binop("*", binop("+", var("n"), a), b)
    with_lit = binop("*", binop("+", lit(n), a), b)
    assert with_var.evaluate({"n": n}) == with_lit.evaluate({})


@given(st.integers(-1000, 1000))
def test_free_variables_of_closed_expr_empty(value):
    expr = binop("-", binop("*", value, 2), 7)
    assert expr.free_variables() == frozenset()

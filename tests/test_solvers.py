"""Tests of the pluggable steady-state solver registry (docs/SOLVERS.md).

Covers the acceptance criteria of the solver backend work: all backends
agree on both case-study chains to tight inf-norm tolerance with small
reported residuals, the vectorized Gauss-Seidel reaches the identical
fixed point as the historical pure-Python sweep, the combined
relative-change + residual convergence test holds on a chain whose
stationary mass spans ~8 orders of magnitude, and every failure path
raises :class:`SolverError` with diagnostics attached.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core.methodology import (
    IncrementalMethodology,
    summarize_solver_records,
)
from repro.ctmc import CTMC, build_ctmc
from repro.ctmc import solvers as solvers_module
from repro.ctmc.solvers import (
    SOLVER_ENV_VAR,
    available_solvers,
    gauss_seidel_reference,
    resolve_method,
    select_method,
    solve_steady_state,
    solver_choices,
)
from repro.ctmc.steady_state import (
    _submatrix,
    steady_state,
    steady_state_solution,
)
from repro.errors import SolverError

ALL_BACKENDS = available_solvers()
ITERATIVE_BACKENDS = ("gmres", "power", "sor")

#: Acceptance gates: backend agreement and per-solve residual.
AGREEMENT_TOLERANCE = 1e-9
RESIDUAL_GATE = 1e-8


def birth_death_generator(rates_up, rates_down) -> sparse.csr_matrix:
    """Irreducible birth-death generator submatrix (no CTMC wrapper)."""
    n = len(rates_up) + 1
    rows, cols, data = [], [], []
    diagonal = np.zeros(n)
    for i, rate in enumerate(rates_up):
        rows.append(i)
        cols.append(i + 1)
        data.append(rate)
        diagonal[i] -= rate
    for i, rate in enumerate(rates_down):
        rows.append(i + 1)
        cols.append(i)
        data.append(rate)
        diagonal[i + 1] -= rate
    for i in range(n):
        rows.append(i)
        cols.append(i)
        data.append(diagonal[i])
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def recurrent_submatrix(ctmc: CTMC) -> sparse.csr_matrix:
    """Generator restricted to the (unique) recurrent class."""
    bsccs = ctmc.bottom_strongly_connected_components()
    assert len(bsccs) == 1
    recurrent = sorted(bsccs[0])
    index = {state: i for i, state in enumerate(recurrent)}
    return _submatrix(ctmc, recurrent, index)


@pytest.fixture(scope="module")
def rpc_ctmc(rpc_family):
    methodology = IncrementalMethodology(rpc_family)
    return build_ctmc(methodology.build_lts("markovian", "dpm"))


@pytest.fixture(scope="module")
def streaming_ctmc(streaming_family):
    methodology = IncrementalMethodology(streaming_family)
    return build_ctmc(methodology.build_lts("markovian", "dpm"))


@pytest.fixture(scope="module", params=["rpc", "streaming"])
def case_ctmc(request):
    return request.getfixturevalue(f"{request.param}_ctmc")


class TestBackendAgreement:
    """Every backend solves both case-study chains to the same answer."""

    def test_backends_agree_with_small_residuals(self, case_ctmc):
        solutions = {
            method: steady_state_solution(case_ctmc, method=method)
            for method in ALL_BACKENDS
        }
        for method, solution in solutions.items():
            assert solution.report.method == method
            assert solution.report.residual < RESIDUAL_GATE
            assert solution.pi.sum() == pytest.approx(1.0)
            assert (solution.pi >= 0).all()
        reference = solutions["direct"].pi
        for method, solution in solutions.items():
            gap = float(np.abs(solution.pi - reference).max())
            assert gap < AGREEMENT_TOLERANCE, (
                f"{method} disagrees with direct by {gap:.3e}"
            )

    def test_alias_gauss_seidel_is_sor(self, rpc_ctmc):
        via_alias = steady_state_solution(rpc_ctmc, method="gauss_seidel")
        via_name = steady_state_solution(rpc_ctmc, method="sor")
        assert via_alias.report.method == "sor"
        assert np.array_equal(via_alias.pi, via_name.pi)


class TestVectorizedGaussSeidelPin:
    """The vectorized sweeps reach the historical sweep's fixed point."""

    def test_identical_fixed_point_on_case_studies(self, case_ctmc):
        sub_q = recurrent_submatrix(case_ctmc)
        reference = gauss_seidel_reference(sub_q, tolerance=1e-12)
        vectorized = solve_steady_state(sub_q, method="sor")
        gap = float(np.abs(vectorized.pi - reference).max())
        assert gap < AGREEMENT_TOLERANCE


class TestWideMagnitudeConvergence:
    """Regression for the absolute-tolerance convergence bug.

    On a chain whose stationary probabilities span ~8 orders of
    magnitude, an absolute-change test declares victory while the tiny
    states still carry large *relative* error.  The combined
    relative-change + residual contract keeps them accurate — these are
    exactly the DPM sleep states the paper's energy measures weight.
    """

    RATE_UP, RATE_DOWN, LEVELS = 1.0, 100.0, 4

    def closed_form(self):
        weights = np.array(
            [(self.RATE_UP / self.RATE_DOWN) ** n
             for n in range(self.LEVELS + 1)]
        )
        return weights / weights.sum()

    @pytest.mark.parametrize("method", ALL_BACKENDS)
    def test_tiny_states_converge_relatively(self, method):
        q = birth_death_generator(
            [self.RATE_UP] * self.LEVELS, [self.RATE_DOWN] * self.LEVELS
        )
        expected = self.closed_form()
        assert expected.min() < 1e-7  # the spread the bug needs
        solution = solve_steady_state(q, method=method)
        relative_error = np.abs(solution.pi - expected) / expected
        assert float(relative_error.max()) < 1e-6
        assert solution.report.residual < RESIDUAL_GATE


class TestFailurePaths:
    @pytest.mark.parametrize("method", ALL_BACKENDS)
    def test_multiple_bsccs_rejected(self, method):
        ctmc = CTMC(3)
        ctmc.add_transition(0, 1, 1.0)
        ctmc.add_transition(0, 2, 1.0)
        with pytest.raises(SolverError, match="bottom strongly connected"):
            steady_state(ctmc, method=method)

    @pytest.mark.parametrize("method", ITERATIVE_BACKENDS)
    def test_max_iterations_exhaustion_carries_diagnostics(self, method):
        q = birth_death_generator([1.0] * 400, [1.3] * 400)
        with pytest.raises(SolverError) as excinfo:
            solve_steady_state(q, method=method, max_iterations=1)
        error = excinfo.value
        assert "did not converge" in str(error)
        assert error.method == method
        assert error.iterations == 1

    @pytest.mark.parametrize(
        "raw, message",
        [
            (lambda size: np.full(size, np.nan), "non-finite"),
            (lambda size: np.zeros(size), "zero vector"),
            (
                lambda size: np.where(np.arange(size) % 2 == 0, 1.0, -1.0),
                "negative probability mass",
            ),
        ],
    )
    def test_invalid_backend_output_rejected(self, monkeypatch, raw, message):
        def broken(problem, options):
            return raw(problem.size), 1

        monkeypatch.setitem(solvers_module._REGISTRY, "broken", broken)
        q = birth_death_generator([1.0, 2.0], [3.0, 1.0])
        with pytest.raises(SolverError, match=message):
            solve_steady_state(q, method="broken")

    def test_residual_above_tolerance_rejected_not_clipped(self, monkeypatch):
        def sloppy(problem, options):
            # Uniform is NOT stationary for an asymmetric chain: a
            # backend returning it must be rejected by the post-hoc
            # residual check, not normalised into shape.
            return np.full(problem.size, 1.0 / problem.size), 7

        monkeypatch.setitem(solvers_module._REGISTRY, "sloppy", sloppy)
        q = birth_death_generator([1.0, 2.0], [3.0, 1.0])
        with pytest.raises(SolverError, match="residual") as excinfo:
            solve_steady_state(q, method="sloppy")
        assert excinfo.value.residual is not None
        assert excinfo.value.iterations == 7

    def test_unknown_method_lists_choices(self):
        with pytest.raises(SolverError, match="unknown steady-state method"):
            resolve_method("magic")

    def test_solver_error_message_embeds_diagnostics(self):
        error = SolverError(
            "boom", method="sor", residual=1.25e-6, iterations=42
        )
        assert "method=sor" in str(error)
        assert "1.250e-06" in str(error)
        assert "iterations=42" in str(error)


class TestRegistryAndSelection:
    def test_solver_choices_cover_backends_and_aliases(self):
        choices = solver_choices()
        assert "auto" in choices
        assert "gauss_seidel" in choices
        for backend in ("direct", "gmres", "power", "sor"):
            assert backend in choices

    def test_resolve_method_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(SOLVER_ENV_VAR, raising=False)
        assert resolve_method(None) == "auto"

    def test_resolve_method_reads_environment(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV_VAR, "power")
        assert resolve_method(None) == "power"
        # An explicit method always wins over the environment.
        assert resolve_method("sor") == "sor"

    def test_resolve_method_rejects_bad_environment(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV_VAR, "nonsense")
        with pytest.raises(SolverError, match="unknown steady-state"):
            resolve_method(None)

    def test_alias_canonicalised(self):
        assert resolve_method("gauss_seidel") == "sor"

    def test_select_method_heuristics(self):
        assert select_method(100, 500) == "direct"
        assert select_method(10_000, 40_000) == "gmres"
        assert select_method(10_000, 500_000) == "direct"
        assert select_method(100_000, 400_000) == "sor"

    def test_auto_falls_back_when_preferred_backend_fails(
        self, monkeypatch
    ):
        def failing(problem, options):
            raise SolverError("injected failure", method="direct")

        monkeypatch.setitem(solvers_module._REGISTRY, "direct", failing)
        monkeypatch.delenv(SOLVER_ENV_VAR, raising=False)
        q = birth_death_generator([1.0, 2.0], [3.0, 1.0])
        solution = solve_steady_state(q, method="auto")
        assert solution.report.method == "sor"
        assert solution.report.fallbacks == ("direct",)

    def test_named_method_never_falls_back(self, monkeypatch):
        def failing(problem, options):
            raise SolverError("injected failure", method="direct")

        monkeypatch.setitem(solvers_module._REGISTRY, "direct", failing)
        q = birth_death_generator([1.0, 2.0], [3.0, 1.0])
        with pytest.raises(SolverError, match="injected failure"):
            solve_steady_state(q, method="direct")


class TestReporting:
    def test_report_round_trips_as_dict(self, rpc_ctmc):
        solution = steady_state_solution(rpc_ctmc, method="direct")
        record = solution.report.as_dict()
        assert record["method"] == "direct"
        assert record["size"] > 0
        assert record["nnz"] > 0
        assert record["iterations"] == 1
        assert record["residual"] < RESIDUAL_GATE
        assert record["mass_defect"] >= 0.0
        assert record["fallbacks"] == []

    def test_single_recurrent_state_is_closed_form(self):
        ctmc = CTMC(2)
        ctmc.add_transition(0, 1, 1.0)
        solution = steady_state_solution(ctmc)
        assert solution.pi == pytest.approx([0.0, 1.0])
        assert solution.report.method == "closed_form"
        assert solution.report.residual == 0.0

    def test_methodology_records_every_solve(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family, solver="direct")
        methodology.solve_markovian()
        methodology.sweep_markovian("shutdown_timeout", [0.5, 2.0])
        assert len(methodology.solver_records) == 3
        stats = methodology.runtime_stats()
        assert stats["solver"]["points"] == 3
        assert stats["solver"]["backends"] == {"direct": 3}
        assert stats["solver"]["max_residual"] < RESIDUAL_GATE

    def test_summarize_solver_records(self):
        records = [
            {"method": "direct", "iterations": 1, "residual": 1e-15,
             "mass_defect": 0.0},
            {"method": "sor", "iterations": 40, "residual": 3e-12,
             "mass_defect": 1e-16},
        ]
        summary = summarize_solver_records(records)
        assert summary["points"] == 2
        assert summary["backends"] == {"direct": 1, "sor": 1}
        assert summary["max_residual"] == 3e-12
        assert summary["max_mass_defect"] == 1e-16
        assert summary["total_iterations"] == 41

    def test_environment_variable_steers_default_solves(
        self, monkeypatch, rpc_ctmc
    ):
        monkeypatch.setenv(SOLVER_ENV_VAR, "power")
        solution = steady_state_solution(rpc_ctmc)
        assert solution.report.method == "power"
        assert solution.report.iterations > 1

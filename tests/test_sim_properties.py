"""Property-based tests of the simulation kernel (hypothesis).

Three laws the vectorized engine and the stream allocator must obey on
*randomly generated* models and parameters, not just the case studies:

* **Clock carry.**  Splitting a trajectory at an arbitrary batch
  boundary (``start_states``/``start_clocks``) continues it — same
  firings, same final state, same residual clocks — so batch-means
  boundaries are never spurious regeneration points.
* **Enabling memory.**  An event that stays enabled across state
  changes keeps counting down (a deterministic timer fires at its
  scheduled absolute time no matter how many other events interleave);
  ``restart`` semantics resamples and fires late.
* **Stream identity.**  Allocator draws depend only on
  ``(seed, run index, event-type name)`` — never on the order in which
  event types are first touched, or on which other event types exist.

Plus the pinned-value regression for :mod:`repro.sim.random`'s
name-keyed substream derivation: the CRN pairing contract
(docs/SIMULATION.md) makes these bytes part of the public interface, so
a refactor that shifts them must fail loudly here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aemilia.rates import GeneralRate
from repro.ctmc import measure, state_clause, trans_clause
from repro.distributions import (
    Deterministic,
    Exponential,
    Normal,
    Uniform,
)
from repro.lts import LTS
from repro.sim import (
    EventStreamAllocator,
    FastSimulator,
    Simulator,
    event_generator,
    event_stream_key,
)

MEASURES = [
    measure("time_in_0", state_clause("a", 1.0)),
    measure("a_rate", trans_clause("a", 1.0)),
]


@st.composite
def cycle_model(draw, states=3):
    """A random timed cycle: state i fires event ``e{i}`` to state i+1.

    Distribution families are drawn per state from the same mix the
    case studies use (deterministic timeouts, Gaussian service times,
    uniform and exponential phases), so the property runs cover every
    clock-arithmetic path of the kernel.
    """
    lts = LTS(0)
    for _ in range(states):
        lts.add_state()
    for source in range(states):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            dist = Deterministic(draw(st.floats(0.1, 5.0)))
        elif kind == 1:
            dist = Exponential(draw(st.floats(0.2, 4.0)))
        elif kind == 2:
            dist = Normal(draw(st.floats(0.5, 4.0)), draw(st.floats(0.05, 0.5)))
        else:
            low = draw(st.floats(0.1, 2.0))
            dist = Uniform(low, low + draw(st.floats(0.1, 2.0)))
        label = "a" if source == 0 else f"e{source}"
        lts.add_transition(
            source, label, (source + 1) % states, GeneralRate(dist), label
        )
    return lts


class TestClockCarry:
    @given(model=cycle_model(), seed=st.integers(0, 2**16), split=st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_split_trajectory_continues_the_full_one(
        self, model, seed, split
    ):
        """run(L) == run(s) ∘ run(L−s) when clocks are carried across."""
        horizon = 40.0
        boundary = split * horizon
        fast = FastSimulator(model, MEASURES)
        [full] = fast.run_many(
            horizon, allocator=EventStreamAllocator(seed, [0])
        )
        alloc = EventStreamAllocator(seed, [0])
        [head] = fast.run_many(boundary, allocator=alloc)
        [tail] = fast.run_many(
            horizon - boundary,
            allocator=alloc,
            start_states=[head.final_state],
            start_clocks=[head.final_clocks],
        )
        assert head.events_fired + tail.events_fired == full.events_fired
        assert tail.final_state == full.final_state
        assert set(tail.final_clocks) == set(full.final_clocks)
        for name, residual in full.final_clocks.items():
            # Carried clocks decrement in two steps instead of one, so
            # the residuals agree to rounding, not to the bit.
            assert tail.final_clocks[name] == pytest.approx(
                residual, rel=1e-9, abs=1e-9
            )

    @given(model=cycle_model(), seed=st.integers(0, 2**16), split=st.floats(0.05, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_fast_and_reference_agree_across_boundaries(
        self, model, seed, split
    ):
        """Chained fast segments stay bit-identical to chained reference
        segments — the shared-stream contract holds through resume."""
        horizon = 30.0
        boundary = split * horizon
        fast = FastSimulator(model, MEASURES)
        fast_alloc = EventStreamAllocator(seed, [0])
        [fast_head] = fast.run_many(boundary, allocator=fast_alloc)
        [fast_tail] = fast.run_many(
            horizon - boundary,
            allocator=fast_alloc,
            start_states=[fast_head.final_state],
            start_clocks=[fast_head.final_clocks],
        )
        reference = Simulator(model, MEASURES)
        ref_alloc = EventStreamAllocator(seed, [0])
        ref_head = reference.run(
            boundary, None, streams=ref_alloc.run_view(0)
        )
        ref_tail = reference.run(
            horizon - boundary,
            None,
            start_state=ref_head.final_state,
            start_clocks=ref_head.final_clocks,
            streams=ref_alloc.run_view(0),
        )
        assert fast_head.measures == ref_head.measures
        assert fast_head.final_clocks == ref_head.final_clocks
        assert fast_tail.measures == ref_tail.measures
        assert fast_tail.final_state == ref_tail.final_state
        assert fast_tail.final_clocks == ref_tail.final_clocks


def _timer_race(hop_rate: float, timeout: float) -> LTS:
    """Two states; a det ``tick`` enabled in both races an exp ``hop``."""
    lts = LTS(0)
    lts.add_state()
    lts.add_state()
    tick = GeneralRate(Deterministic(timeout))
    hop = GeneralRate(Exponential(hop_rate))
    lts.add_transition(0, "tick", 0, tick, "tick")
    lts.add_transition(1, "tick", 1, tick, "tick")
    lts.add_transition(0, "hop", 1, hop, "hop")
    lts.add_transition(1, "hop", 0, hop, "hop")
    return lts


TIMER_MEASURES = [measure("ticks", trans_clause("tick", 1.0))]


class TestEnablingMemory:
    @given(
        hop_rate=st.floats(0.5, 8.0),
        timeout=st.floats(1.0, 10.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_persistent_timer_fires_on_schedule(
        self, hop_rate, timeout, seed
    ):
        """The det timer keeps its clock across hops: first firing at
        exactly ``timeout`` under enabling memory, strictly later under
        restart whenever a hop pre-empted it."""
        model = _timer_race(hop_rate, timeout)
        firings = []

        def observer(row, when, label, target):
            if label == "tick" and not firings:
                firings.append(when)

        fast = FastSimulator(model, TIMER_MEASURES)
        fast.run_many(
            timeout * 3,
            allocator=EventStreamAllocator(seed, [0]),
            observer=observer,
        )
        assert firings, "det timer never fired within 3 timeouts"
        assert firings[0] == pytest.approx(timeout, rel=1e-12)

        restarted = []

        def restart_observer(row, when, label, target):
            restarted.append((when, label))

        restart = FastSimulator(model, TIMER_MEASURES, "restart")
        restart.run_many(
            timeout * 3,
            allocator=EventStreamAllocator(seed, [0]),
            observer=restart_observer,
        )
        hops_before = [
            when for when, label in restarted if label == "hop"
        ]
        ticks = [when for when, label in restarted if label == "tick"]
        if hops_before and hops_before[0] < timeout:
            # The hop resampled the timer: its first firing (if any
            # within the horizon) comes strictly after the schedule.
            assert not ticks or ticks[0] > timeout


class TestStreamIdentity:
    @given(
        seed=st.integers(0, 2**20),
        run=st.integers(0, 64),
        names=st.lists(
            st.sampled_from(
                ["C.req", "S.serve", "DPM.shutdown", "S.awake", "RCS.prop"]
            ),
            min_size=2,
            max_size=5,
            unique=True,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_draws_independent_of_touch_order(self, seed, run, names):
        """Touching event types in any order yields identical streams."""
        dist = Exponential(1.0)
        forward = EventStreamAllocator(seed, [run])
        backward = EventStreamAllocator(seed, [run])
        row = np.array([0])
        first = {
            name: [float(forward.take(name, dist, row)[0]) for _ in range(3)]
            for name in names
        }
        second = {
            name: [
                float(backward.take(name, dist, row)[0]) for _ in range(3)
            ]
            for name in reversed(names)
        }
        assert first == second

    @given(seed=st.integers(0, 2**20), run=st.integers(0, 64))
    @settings(max_examples=50, deadline=None)
    def test_streams_unaffected_by_other_event_types(self, seed, run):
        """Adding an event type to a model reshuffles nobody else."""
        dist = Uniform(0.0, 1.0)
        row = np.array([0])
        small = EventStreamAllocator(seed, [run])
        large = EventStreamAllocator(seed, [run])
        large.take("Z.newcomer", dist, row)
        np.testing.assert_array_equal(
            [small.take("S.serve", dist, row)[0] for _ in range(4)],
            [large.take("S.serve", dist, row)[0] for _ in range(4)],
        )


class TestStreamRegression:
    """Pinned bytes: the (seed, run, name) -> stream map is an interface.

    Checkpoints, CRN pairing and the differential contract all assume
    these derivations never drift; if an intentional change moves them,
    update the pins and bump the checkpoint fingerprints' story in
    docs/SIMULATION.md.
    """

    def test_event_stream_key_pinned(self):
        assert event_stream_key("C.process_result_packet") == (
            7172991918175249518,
            14445653606099387599,
        )

    def test_event_generator_pinned(self):
        first = event_generator(20040628, 0, "C.process_result_packet")
        np.testing.assert_allclose(
            first.random(3),
            [0.5936360607730822, 0.19066939154478357, 0.9266602261026605],
            rtol=0.0,
            atol=0.0,
        )
        other = event_generator(20040628, 3, "S.awake")
        np.testing.assert_allclose(
            other.random(3),
            [0.48976447856706007, 0.22387966799078407, 0.4219161832524123],
            rtol=0.0,
            atol=0.0,
        )

    def test_run_and_name_both_matter(self):
        base = event_generator(1, 0, "E.a").random(4).tolist()
        assert event_generator(1, 1, "E.a").random(4).tolist() != base
        assert event_generator(1, 0, "E.b").random(4).tolist() != base
        assert event_generator(2, 0, "E.a").random(4).tolist() != base

"""Tests for the IncrementalMethodology driver."""

import pytest

from repro.core import IncrementalMethodology, ModelFamily
from repro.core.methodology import solve_markovian_architecture
from repro.errors import AnalysisError


class TestVariantHandling:
    def test_unknown_variant_rejected(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        with pytest.raises(AnalysisError, match="unknown variant"):
            methodology.solve_markovian("maybe")

    def test_measure_names_order(self, rpc_family):
        assert rpc_family.measure_names() == [
            "throughput", "waiting_time", "energy",
        ]

    def test_lts_cache_reused(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        first = methodology.build_lts("markovian", "dpm", {"shutdown_timeout": 5.0})
        second = methodology.build_lts("markovian", "dpm", {"shutdown_timeout": 5.0})
        assert first is second

    def test_lts_cache_distinguishes_overrides(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        first = methodology.build_lts("markovian", "dpm", {"shutdown_timeout": 5.0})
        second = methodology.build_lts("markovian", "dpm", {"shutdown_timeout": 9.0})
        assert first is not second


class TestPhases:
    def test_phase1_functional(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        result = methodology.assess_functionality()
        assert result.holds

    def test_phase2_solves_both_variants(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        dpm = methodology.solve_markovian("dpm")
        nodpm = methodology.solve_markovian("nodpm")
        assert set(dpm) == {"throughput", "waiting_time", "energy"}
        assert nodpm["energy"] > dpm["energy"]

    def test_phase2_sweep_shapes(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        series = methodology.sweep_markovian(
            "shutdown_timeout", [1.0, 5.0, 20.0], "dpm"
        )
        assert len(series["energy"]) == 3
        # Longer timeouts -> less aggressive DPM -> more energy.
        assert series["energy"][0] < series["energy"][1] < series["energy"][2]

    def test_phase2_solver_choice(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        direct = methodology.solve_markovian("dpm", method="direct")
        power = methodology.solve_markovian("dpm", method="power")
        for name in direct:
            assert direct[name] == pytest.approx(power[name], rel=1e-5)

    def test_phase3_simulation(self, rpc_family):
        methodology = IncrementalMethodology(rpc_family)
        replication = methodology.simulate_general(
            "dpm",
            {"shutdown_timeout": 5.0},
            run_length=3_000.0,
            runs=3,
            warmup=100.0,
        )
        assert replication["throughput"].mean > 0

    def test_missing_model_rejected(self, rpc_family):
        family = ModelFamily(
            name="partial",
            functional_dpm=rpc_family.functional_dpm,
            markovian_dpm=rpc_family.markovian_dpm,
            markovian_nodpm=rpc_family.markovian_nodpm,
            general_dpm=rpc_family.general_dpm,
            general_nodpm=None,
            high_patterns=rpc_family.high_patterns,
            low_patterns=rpc_family.low_patterns,
            measures=rpc_family.measures,
        )
        methodology = IncrementalMethodology(family)
        with pytest.raises(AnalysisError, match="no general_nodpm"):
            methodology.build_lts("general", "nodpm")


class TestStandaloneSolve:
    def test_solve_markovian_architecture(self, rpc_family):
        results = solve_markovian_architecture(
            rpc_family.markovian_nodpm, rpc_family.measures
        )
        assert results["throughput"] == pytest.approx(0.0866, rel=0.01)


class TestFullAssessment:
    def test_full_assessment_completes_on_rpc(self, rpc_family):
        from repro.core import IncrementalMethodology

        methodology = IncrementalMethodology(rpc_family)
        assessment = methodology.full_assessment(
            {"shutdown_timeout": 5.0},
            run_length=4_000.0,
            runs=4,
            warmup=200.0,
        )
        assert assessment.completed
        text = assessment.report()
        assert "phase 1" in text
        assert "phase 2" in text
        assert "phase 3b" in text
        assert assessment.markovian_dpm["energy"] < (
            assessment.markovian_nodpm["energy"]
        )

    def test_full_assessment_short_circuits_on_interference(self):
        from repro.casestudies.rpc import functional, general, markovian
        from repro.core import IncrementalMethodology, ModelFamily

        family = ModelFamily(
            name="rpc-broken",
            functional_dpm=functional.simplified_architecture(),
            markovian_dpm=markovian.dpm_architecture(),
            markovian_nodpm=markovian.nodpm_architecture(),
            general_dpm=general.dpm_architecture(),
            general_nodpm=general.nodpm_architecture(),
            high_patterns=functional.HIGH_PATTERNS,
            low_patterns=functional.LOW_PATTERNS,
            measures=markovian.measures(),
        )
        assessment = IncrementalMethodology(family).full_assessment()
        assert not assessment.completed
        assert assessment.markovian_dpm is None
        assert "phases 2-3 skipped" in assessment.report()


class TestRareSweep:
    def _sweep(self, rpc_family, tmp_path, **overrides):
        methodology = IncrementalMethodology(rpc_family)
        settings = dict(
            variant="dpm",
            run_length=60.0,
            levels=2,
            splits=2,
            segments=4,
            runs=2,
            seed=5,
            checkpoint=str(tmp_path / "rare.jsonl"),
        )
        settings.update(overrides)
        return methodology.sweep_rare(
            "shutdown_timeout", [4.0, 8.0], **settings
        )

    def test_rare_series_shapes(self, rpc_family, tmp_path):
        series = self._sweep(rpc_family, tmp_path)
        for name in rpc_family.measure_names() + [
            "rare_probability", "rare_low", "rare_high",
        ]:
            assert len(series[name]) == 2
        for low, prob, high in zip(
            series["rare_low"], series["rare_probability"],
            series["rare_high"],
        ):
            assert 0.0 <= low <= high
            assert prob >= 0.0

    def test_resume_is_bit_identical(self, rpc_family, tmp_path):
        first = self._sweep(rpc_family, tmp_path)
        resumed = self._sweep(rpc_family, tmp_path)
        assert resumed == first

    def test_journal_refuses_other_splitting_geometry(
        self, rpc_family, tmp_path
    ):
        from repro.errors import CheckpointError

        self._sweep(rpc_family, tmp_path)
        for change in (
            {"levels": 3},
            {"splits": 3},
            {"segments": 8},
            {"rare_measure": "energy"},
        ):
            with pytest.raises(CheckpointError):
                self._sweep(rpc_family, tmp_path, **change)

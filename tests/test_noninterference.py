"""Tests for the noninterference analysis (hide vs restrict)."""

import pytest

from repro.core import check_noninterference, high_patterns_for_instances
from repro.core.noninterference import low_observation
from repro.errors import AnalysisError
from repro.lts import TAU, build_lts


class TestLowObservation:
    def test_hides_everything_but_low(self):
        lts = build_lts(
            3, [(0, "C.ask", 1), (1, "S.think", 2), (2, "C.answer", 0)]
        )
        observed = low_observation(lts, ["C.ask", "C.answer"])
        labels = {t.label for t in observed.transitions}
        assert labels == {"C.ask", "C.answer", TAU}

    def test_low_patterns_match_sync_participants(self):
        lts = build_lts(2, [(0, "C.ask#S.take", 1), (1, "S.reply#C.get", 0)])
        observed = low_observation(lts, ["C.ask"])
        labels = {t.label for t in observed.transitions}
        assert labels == {"C.ask#S.take", TAU}


class TestCheck:
    def test_transparent_high_action(self):
        """High tau-like detour that never changes low behaviour: passes."""
        lts = build_lts(
            3,
            [
                (0, "C.work", 0),
                (0, "H.toggle", 1),
                (1, "C.work", 1),
                (1, "H.toggle", 0),
            ],
        )
        result = check_noninterference(lts, ["H.toggle"], ["C.work"])
        assert result.holds
        assert result.formula is None
        assert "HOLDS" in result.diagnostic()

    def test_interfering_high_action(self):
        """High action that disables the low action: fails with formula."""
        lts = build_lts(
            2,
            [
                (0, "C.work", 0),
                (0, "H.kill", 1),
                # state 1: deadlock — C.work impossible
            ],
        )
        result = check_noninterference(lts, ["H.kill"], ["C.work"])
        assert not result.holds
        assert result.formula is not None
        assert result.formula_side == "with_dpm"
        assert "FAILS" in result.diagnostic()

    def test_formula_is_verified_against_both_sides(self):
        lts = build_lts(
            2, [(0, "C.work", 0), (0, "H.kill", 1)]
        )
        result = check_noninterference(lts, ["H.kill"], ["C.work"])
        from repro.lts import verify_distinguishing

        assert verify_distinguishing(
            result.check.result,
            result.formula,
            result.check.initial_first,
            result.check.initial_second,
        )

    def test_overlapping_high_low_rejected(self):
        lts = build_lts(1, [(0, "X.a", 0)])
        with pytest.raises(AnalysisError, match="both high and low"):
            check_noninterference(lts, ["X.a"], ["X.a"])

    def test_architecture_input_accepted(self, pingpong):
        result = check_noninterference(
            pingpong, ["Q.send_pong"], ["P.send_ping"]
        )
        # Preventing the pong reply kills the ping loop after one round.
        assert not result.holds

    def test_high_instance_wildcards(self):
        assert high_patterns_for_instances(["DPM", "PM2"]) == [
            "DPM.*", "PM2.*",
        ]

    def test_interference_via_visible_reordering(self):
        """High action that only *adds* a low possibility still fails."""
        lts = build_lts(
            3,
            [
                (0, "C.a", 1),
                (0, "H.enable", 2),
                (2, "C.b", 1),
            ],
        )
        result = check_noninterference(lts, ["H.enable"], ["C.a", "C.b"])
        assert not result.holds
        # The formula is satisfied by the DPM side: <<C.b>>TRUE.
        text = result.formula.render()
        assert "C.b" in text


class TestPaperVerdicts:
    def test_rpc_simplified_fails(self, rpc_family):
        from repro.casestudies.rpc import functional

        result = check_noninterference(
            functional.simplified_architecture(),
            functional.HIGH_PATTERNS,
            functional.LOW_PATTERNS,
        )
        assert not result.holds

    def test_rpc_revised_passes(self, rpc_family):
        result = check_noninterference(
            rpc_family.functional_dpm,
            rpc_family.high_patterns,
            rpc_family.low_patterns,
        )
        assert result.holds

    def test_streaming_passes(self, streaming_family):
        from repro.casestudies.streaming import functional

        result = check_noninterference(
            streaming_family.functional_dpm,
            streaming_family.high_patterns,
            streaming_family.low_patterns,
            const_overrides=functional.FUNCTIONAL_CAPACITIES,
        )
        assert result.holds

"""Paper-shape tests for the rpc case study (Sect. 3.1, 4.1, 5.2).

These tests assert the *qualitative* claims of the paper, not absolute
numbers: orderings between DPM and NO-DPM, monotonicity in the DPM
timeout, convergence to the NO-DPM baseline, the bimodal knee at the mean
idle period, and the counterproductive region.
"""

import pytest

from repro.casestudies import rpc
from repro.core import IncrementalMethodology


@pytest.fixture(scope="module")
def methodology(request):
    from repro.casestudies.rpc import family

    return IncrementalMethodology(family())


def energy_per_request(results):
    return results["energy"] / results["throughput"]


class TestMarkovianShapes:
    """Fig. 3 (left)."""

    def test_dpm_saves_energy_per_request_everywhere(self, methodology):
        nodpm = energy_per_request(methodology.solve_markovian("nodpm"))
        for timeout in (0.5, 5.0, 25.0):
            dpm = energy_per_request(
                methodology.solve_markovian(
                    "dpm", {"shutdown_timeout": timeout}
                )
            )
            assert dpm < nodpm

    def test_dpm_costs_throughput(self, methodology):
        nodpm = methodology.solve_markovian("nodpm")["throughput"]
        dpm = methodology.solve_markovian(
            "dpm", {"shutdown_timeout": 2.0}
        )["throughput"]
        assert dpm < nodpm

    def test_dpm_increases_waiting(self, methodology):
        nodpm = methodology.solve_markovian("nodpm")["waiting_time"]
        dpm = methodology.solve_markovian(
            "dpm", {"shutdown_timeout": 2.0}
        )["waiting_time"]
        assert dpm > nodpm

    def test_shorter_timeout_larger_impact(self, methodology):
        sweep = methodology.sweep_markovian(
            "shutdown_timeout", [0.5, 5.0, 25.0], "dpm"
        )
        assert sweep["throughput"][0] < sweep["throughput"][1] < sweep["throughput"][2]
        assert sweep["waiting_time"][0] > sweep["waiting_time"][2]
        assert sweep["energy"][0] < sweep["energy"][2]

    def test_convergence_to_nodpm_for_large_timeouts(self, methodology):
        nodpm = methodology.solve_markovian("nodpm")
        dpm = methodology.solve_markovian(
            "dpm", {"shutdown_timeout": 500.0}
        )
        assert dpm["throughput"] == pytest.approx(
            nodpm["throughput"], rel=0.02
        )
        assert dpm["energy"] == pytest.approx(nodpm["energy"], rel=0.03)


class TestGeneralShapes:
    """Fig. 3 (right): the deterministic-timeout phenomenology."""

    SIM = dict(run_length=8_000.0, runs=4, warmup=200.0)

    def test_flat_below_knee(self, methodology):
        low = methodology.simulate_general(
            "dpm", {"shutdown_timeout": 3.0}, **self.SIM
        )
        mid = methodology.simulate_general(
            "dpm", {"shutdown_timeout": 8.0}, **self.SIM
        )
        # Below the knee the performance measures are timeout-independent.
        assert low["throughput"].mean == pytest.approx(
            mid["throughput"].mean, rel=0.02
        )
        # ... but energy grows with the timeout.
        assert low["energy"].mean < mid["energy"].mean

    def test_no_effect_above_knee(self, methodology):
        idle = rpc.DEFAULT_PARAMETERS.mean_idle_period
        above = methodology.simulate_general(
            "dpm", {"shutdown_timeout": idle + 6.0}, **self.SIM
        )
        nodpm = methodology.simulate_general("nodpm", **self.SIM)
        assert above["throughput"].mean == pytest.approx(
            nodpm["throughput"].mean, rel=0.02
        )
        assert above["energy"].mean == pytest.approx(
            nodpm["energy"].mean, rel=0.02
        )

    def test_counterproductive_near_idle_period(self, methodology):
        """Timeout just below the idle period: energy/request exceeds
        NO-DPM (the paper's headline general-model finding)."""
        nodpm_rep = methodology.simulate_general("nodpm", **self.SIM)
        nodpm = nodpm_rep["energy"].mean / nodpm_rep["throughput"].mean
        near = methodology.simulate_general(
            "dpm", {"shutdown_timeout": 9.5}, **self.SIM
        )
        near_epr = near["energy"].mean / near["throughput"].mean
        assert near_epr > nodpm

    def test_beneficial_for_short_timeouts(self, methodology):
        nodpm_rep = methodology.simulate_general("nodpm", **self.SIM)
        nodpm = nodpm_rep["energy"].mean / nodpm_rep["throughput"].mean
        short = methodology.simulate_general(
            "dpm", {"shutdown_timeout": 1.0}, **self.SIM
        )
        short_epr = short["energy"].mean / short["throughput"].mean
        assert short_epr < nodpm


class TestParameters:
    def test_mean_idle_period_value(self):
        assert rpc.DEFAULT_PARAMETERS.mean_idle_period == pytest.approx(11.3)

    def test_const_overrides_cover_architecture(self, rpc_family):
        overrides = rpc.DEFAULT_PARAMETERS.const_overrides()
        declared = {p.name for p in rpc_family.general_dpm.const_params}
        assert set(overrides) <= declared

    def test_sweep_within_paper_range(self):
        assert min(rpc.SHUTDOWN_TIMEOUT_SWEEP) > 0
        assert max(rpc.SHUTDOWN_TIMEOUT_SWEEP) == 25.0


class TestFamily:
    def test_family_is_complete(self, rpc_family):
        assert rpc_family.functional_dpm is not None
        assert rpc_family.markovian_nodpm is not None
        assert rpc_family.general_nodpm is not None
        assert len(rpc_family.measures) == 3

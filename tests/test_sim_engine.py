"""Tests for the discrete-event (GSMP) simulation engine."""

import numpy as np
import pytest

from repro.aemilia import generate_lts, parse_architecture
from repro.aemilia.rates import (
    ExpRate,
    GeneralRate,
    ImmediateRate,
    PassiveRate,
)
from repro.ctmc import (
    build_ctmc,
    evaluate_measure,
    measure,
    state_clause,
    steady_state,
    trans_clause,
)
from repro.distributions import Deterministic, Exponential
from repro.errors import SimulationError
from repro.lts import LTS
from repro.sim import (
    EventTraceRecorder,
    Simulator,
    make_generator,
    simulate,
)


def rated_lts(entries, initial=0):
    lts = LTS(initial)
    states = 1 + max(max(s, t) for s, _, t, _ in entries)
    for _ in range(states):
        lts.add_state()
    for source, label, target, rate in entries:
        lts.add_transition(source, label, target, rate, event=f"E{label}")
    return lts


class TestBasicRuns:
    def test_two_state_time_split(self):
        """Exp(2)/Exp(3) alternation: 60% of time in state 0."""
        lts = rated_lts(
            [(0, "up", 1, ExpRate(2.0)), (1, "down", 0, ExpRate(3.0))]
        )
        m = measure("in0", state_clause("up", 1.0))
        result = simulate(lts, [m], 50_000.0, make_generator(7))
        assert result.measures["in0"] == pytest.approx(0.6, rel=0.02)

    def test_trans_measure_is_rate(self):
        lts = rated_lts(
            [(0, "up", 1, ExpRate(2.0)), (1, "down", 0, ExpRate(3.0))]
        )
        m = measure("ups", trans_clause("up", 1.0))
        result = simulate(lts, [m], 50_000.0, make_generator(7))
        # Cycle rate = 1/(1/2 + 1/3) = 1.2 per time unit.
        assert result.measures["ups"] == pytest.approx(1.2, rel=0.02)

    def test_deterministic_alternation_exact(self):
        lts = rated_lts(
            [
                (0, "up", 1, GeneralRate(Deterministic(2.0))),
                (1, "down", 0, GeneralRate(Deterministic(3.0))),
            ]
        )
        m = measure("in0", state_clause("up", 1.0))
        result = simulate(lts, [m], 50_000.0, make_generator(1))
        assert result.measures["in0"] == pytest.approx(0.4, abs=0.001)

    def test_deadlock_ends_run(self):
        lts = rated_lts([(0, "die", 1, ExpRate(1.0))])
        m = measure("alive", state_clause("die", 1.0))
        result = simulate(lts, [m], 1_000.0, make_generator(3))
        assert result.deadlocked
        # Time in state 0 is ~1 time unit out of 1000.
        assert result.measures["alive"] < 0.01

    def test_immediate_chain_resolved_in_zero_time(self):
        lts = rated_lts(
            [
                (0, "fire", 1, ExpRate(1.0)),
                (1, "hopA", 2, ImmediateRate(1, 1.0)),
                (2, "hopB", 0, ImmediateRate(1, 1.0)),
            ]
        )
        fires = measure("fires", trans_clause("fire", 1.0))
        hops = measure("hops", trans_clause("hopA", 1.0))
        result = simulate(lts, [fires, hops], 20_000.0, make_generator(5))
        assert result.measures["hops"] == pytest.approx(
            result.measures["fires"], rel=1e-9
        )

    def test_immediate_branch_weights(self):
        lts = LTS(0)
        for _ in range(4):
            lts.add_state()
        lts.add_transition(0, "fire", 1, ExpRate(5.0), "fire")
        lts.add_transition(1, "left", 2, ImmediateRate(1, 3.0), "branch")
        lts.add_transition(1, "right", 3, ImmediateRate(1, 1.0), "branch")
        lts.add_transition(2, "backL", 0, ExpRate(5.0), "backL")
        lts.add_transition(3, "backR", 0, ExpRate(5.0), "backR")
        lefts = measure("lefts", trans_clause("left", 1.0))
        rights = measure("rights", trans_clause("right", 1.0))
        result = simulate(lts, [lefts, rights], 30_000.0, make_generator(11))
        ratio = result.measures["lefts"] / result.measures["rights"]
        assert ratio == pytest.approx(3.0, rel=0.05)

    def test_timeless_divergence_detected(self):
        lts = rated_lts(
            [
                (0, "a", 1, ImmediateRate(1, 1.0)),
                (1, "b", 0, ImmediateRate(1, 1.0)),
            ]
        )
        with pytest.raises(SimulationError, match="immediate"):
            simulate(lts, [], 10.0, make_generator(1))

    def test_passive_transition_rejected(self):
        lts = rated_lts(
            [(0, "a", 1, PassiveRate()), (1, "b", 0, ExpRate(1.0))]
        )
        with pytest.raises(SimulationError, match="passive"):
            simulate(lts, [], 10.0, make_generator(1))

    def test_run_length_must_be_positive(self):
        lts = rated_lts([(0, "a", 0, ExpRate(1.0))])
        with pytest.raises(SimulationError):
            simulate(lts, [], 0.0, make_generator(1))


class TestClockSemantics:
    def _interrupt_model(self):
        """A deterministic timer racing a fast exponential disturbance.

        State 0: timer det(10) to state 2; disturbance exp(1) to state 1.
        State 1: recovery exp(10) back to state 0 (timer still enabled? no:
        in state 1 the timer is NOT enabled, so enabling memory discards
        it — both semantics resample).  To expose the difference we keep
        the timer enabled in both states by wiring it from both.
        """
        lts = LTS(0)
        for _ in range(3):
            lts.add_state()
        # Timer event shared by states 0 and 1 (same event name).
        lts.add_transition(0, "timeout", 2, GeneralRate(Deterministic(10.0)), "timer")
        lts.add_transition(1, "timeout", 2, GeneralRate(Deterministic(10.0)), "timer")
        lts.add_transition(0, "disturb", 1, ExpRate(1.0), "disturb")
        lts.add_transition(1, "recover", 0, ExpRate(1.0), "recover")
        lts.add_transition(2, "reset", 0, ExpRate(100.0), "reset")
        return lts

    def test_enabling_memory_timer_unaffected_by_disturbance(self):
        lts = self._interrupt_model()
        timeouts = measure("t", trans_clause("timeout", 1.0))
        result = simulate(
            lts, [timeouts], 50_000.0, make_generator(2),
            clock_semantics="enabling_memory",
        )
        # Timer stays armed through disturb/recover: fires every ~10+eps.
        assert result.measures["t"] == pytest.approx(0.1, rel=0.05)

    def test_restart_semantics_starves_the_timer(self):
        lts = self._interrupt_model()
        timeouts = measure("t", trans_clause("timeout", 1.0))
        result = simulate(
            lts, [timeouts], 50_000.0, make_generator(2),
            clock_semantics="restart",
        )
        # Every disturbance restarts the det(10) timer: far fewer firings.
        assert result.measures["t"] < 0.02

    def test_restart_equals_memory_for_exponentials(self):
        """Memorylessness: both semantics agree for all-exp models."""
        lts = rated_lts(
            [(0, "up", 1, ExpRate(2.0)), (1, "down", 0, ExpRate(3.0))]
        )
        m = measure("in0", state_clause("up", 1.0))
        mem = simulate(
            lts, [m], 30_000.0, make_generator(9),
            clock_semantics="enabling_memory",
        )
        re = simulate(
            lts, [m], 30_000.0, make_generator(9), clock_semantics="restart"
        )
        assert mem.measures["in0"] == pytest.approx(
            re.measures["in0"], rel=0.03
        )

    def test_unknown_semantics_rejected(self):
        lts = rated_lts([(0, "a", 0, ExpRate(1.0))])
        with pytest.raises(SimulationError):
            Simulator(lts, [], clock_semantics="quantum")


class TestClockCarryAcrossRuns:
    """``final_clocks`` / ``start_clocks``: resuming a trajectory keeps
    the residual event clocks instead of resampling them."""

    @staticmethod
    def _cycle():
        lts = LTS(0)
        for _ in range(2):
            lts.add_state()
        lts.add_transition(
            0, "tick", 1, GeneralRate(Deterministic(150.0)), "tick"
        )
        lts.add_transition(
            1, "tock", 0, GeneralRate(Deterministic(50.0)), "tock"
        )
        return lts

    def test_final_clocks_hold_the_residuals(self):
        lts = self._cycle()
        m = measure("armed", state_clause("tick", 1.0))
        simulator = Simulator(lts, [m])
        result = simulator.run(100.0, make_generator(1))
        assert result.final_state == 0
        assert result.final_clocks == pytest.approx({"tick": 50.0})

    def test_resumed_run_matches_one_long_run(self):
        lts = self._cycle()
        m = measure("armed", state_clause("tick", 1.0))
        simulator = Simulator(lts, [m])
        rng = make_generator(1)
        state, clocks = None, None
        firings = []
        offset = 0.0

        def observe(time, label, target):
            firings.append((offset + time, label))

        for _ in range(5):
            result = simulator.run(
                90.0, rng, start_state=state, start_clocks=clocks,
                observer=observe,
            )
            state = result.final_state
            clocks = result.final_clocks
            offset += 90.0
        # One uninterrupted trajectory: tick at 150, tock at 200, ...
        assert [
            (pytest.approx(t), label) for t, label in
            [(150.0, "tick"), (200.0, "tock"), (350.0, "tick"),
             (400.0, "tock")]
        ] == firings


class TestAgainstAnalyticSolution:
    def test_exponential_model_matches_ctmc(self, mm1k):
        """Statistical agreement between the simulator and the solver."""
        lts = generate_lts(mm1k)
        ctmc = build_ctmc(lts)
        pi = steady_state(ctmc)
        served = measure("served", trans_clause("Q.serve", 1.0))
        analytic = evaluate_measure(ctmc, pi, served)
        result = simulate(lts, [served], 100_000.0, make_generator(13))
        assert result.measures["served"] == pytest.approx(analytic, rel=0.03)

    def test_warmup_removes_initial_bias(self):
        """A long initial delay distorts short runs unless cut off."""
        lts = LTS(0)
        for _ in range(3):
            lts.add_state()
        lts.add_transition(0, "boot", 1, GeneralRate(Deterministic(500.0)), "boot")
        lts.add_transition(1, "work", 2, ExpRate(1.0), "work")
        lts.add_transition(2, "rest", 1, ExpRate(1.0), "rest")
        m = measure("working", state_clause("rest", 1.0))
        biased = simulate(lts, [m], 1_000.0, make_generator(3))
        unbiased = simulate(lts, [m], 1_000.0, make_generator(3), warmup=600.0)
        assert unbiased.measures["working"] == pytest.approx(0.5, abs=0.08)
        assert biased.measures["working"] < unbiased.measures["working"]


class TestObserverAndTrace:
    def test_observer_sees_every_firing(self):
        lts = rated_lts(
            [(0, "up", 1, ExpRate(2.0)), (1, "down", 0, ExpRate(3.0))]
        )
        events = []
        simulator = Simulator(lts, [])
        result = simulator.run(
            100.0, make_generator(4),
            observer=lambda t, label, target: events.append(label),
        )
        assert len(events) == result.events_fired
        assert set(events) == {"up", "down"}

    def test_trace_recorder_caps_entries(self):
        lts = rated_lts(
            [(0, "up", 1, ExpRate(2.0)), (1, "down", 0, ExpRate(3.0))]
        )
        recorder = EventTraceRecorder(lts, capacity=10)
        recorder.run(1_000.0, make_generator(4))
        assert len(recorder.entries) == 10
        assert "capped" in recorder.format()

    def test_trace_times_are_monotone(self):
        lts = rated_lts(
            [(0, "up", 1, ExpRate(2.0)), (1, "down", 0, ExpRate(3.0))]
        )
        recorder = EventTraceRecorder(lts, capacity=50)
        recorder.run(1_000.0, make_generator(4))
        times = [entry.time for entry in recorder.entries]
        assert times == sorted(times)


class TestSelfLoopOptimisation:
    def test_unobserved_selfloops_skipped(self):
        lts = LTS(0)
        for _ in range(2):
            lts.add_state()
        lts.add_transition(0, "monitor", 0, ExpRate(1000.0), "monitor")
        lts.add_transition(0, "go", 1, ExpRate(1.0), "go")
        lts.add_transition(1, "back", 0, ExpRate(1.0), "back")
        # Only a STATE measure references the monitor: no need to fire it.
        m = measure("marked", state_clause("monitor", 1.0))
        simulator = Simulator(lts, [m])
        result = simulator.run(1_000.0, make_generator(6))
        # Events fired should be ~2 per cycle, far below the 1000/unit
        # monitor rate.
        assert result.events_fired < 3_000
        assert result.measures["marked"] == pytest.approx(0.5, abs=0.05)

    def test_trans_observed_selfloops_still_fire(self):
        lts = LTS(0)
        lts.add_state()
        lts.add_transition(0, "tick", 0, ExpRate(10.0), "tick")
        m = measure("ticks", trans_clause("tick", 1.0))
        result = simulate(lts, [m], 5_000.0, make_generator(8))
        assert result.measures["ticks"] == pytest.approx(10.0, rel=0.05)

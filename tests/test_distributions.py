"""Unit, statistical and property tests for the duration distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Normal,
    Pareto,
    Uniform,
    Weibull,
    make_distribution,
    parse_distribution_spec,
)
from repro.errors import SpecificationError


def rng(seed=12345):
    return np.random.Generator(np.random.PCG64(seed))


class TestExponential:
    def test_moments(self):
        dist = Exponential(4.0)
        assert dist.mean == pytest.approx(0.25)
        assert dist.variance == pytest.approx(0.0625)

    def test_sample_mean(self):
        dist = Exponential(2.0)
        samples = [dist.sample(rng()) for _ in range(1)]
        generator = rng()
        values = np.array([dist.sample(generator) for _ in range(20000)])
        assert values.mean() == pytest.approx(0.5, rel=0.05)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(SpecificationError):
            Exponential(0.0)
        with pytest.raises(SpecificationError):
            Exponential(-1.0)

    def test_exponential_equivalent_is_self(self):
        dist = Exponential(3.0)
        assert dist.exponential_equivalent() is dist

    def test_str(self):
        assert str(Exponential(2.0)) == "exp(2)"


class TestDeterministic:
    def test_sample_is_constant(self):
        dist = Deterministic(1.5)
        generator = rng()
        assert all(dist.sample(generator) == 1.5 for _ in range(10))

    def test_moments(self):
        dist = Deterministic(3.0)
        assert dist.mean == 3.0
        assert dist.variance == 0.0

    def test_zero_allowed(self):
        assert Deterministic(0.0).sample(rng()) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            Deterministic(-0.1)

    def test_exponential_equivalent_mean(self):
        assert Deterministic(4.0).exponential_equivalent().mean == 4.0

    def test_zero_mean_has_no_exponential_equivalent(self):
        with pytest.raises(SpecificationError):
            Deterministic(0.0).exponential_equivalent()


class TestNormal:
    def test_moments(self):
        dist = Normal(0.8, 0.0345)
        assert dist.mean == pytest.approx(0.8)
        assert dist.variance == pytest.approx(0.0345**2)

    def test_sampling_statistics(self):
        dist = Normal(0.8, 0.0345)
        generator = rng()
        values = np.array([dist.sample(generator) for _ in range(20000)])
        assert values.mean() == pytest.approx(0.8, rel=0.01)
        assert values.std() == pytest.approx(0.0345, rel=0.05)

    def test_samples_never_negative(self):
        # Aggressive parameterisation where truncation actually bites.
        dist = Normal(0.1, 0.5)
        generator = rng()
        assert all(dist.sample(generator) >= 0 for _ in range(2000))

    def test_bad_sigma_rejected(self):
        with pytest.raises(SpecificationError):
            Normal(1.0, 0.0)

    def test_paper_parameterisation_truncation_negligible(self):
        """0.8 ± 0.0345: mass below zero is ~0 (23 sigma)."""
        from scipy import stats

        assert stats.norm.cdf(0, 0.8, 0.0345) < 1e-12


class TestUniform:
    def test_moments(self):
        dist = Uniform(1.0, 3.0)
        assert dist.mean == 2.0
        assert dist.variance == pytest.approx(4.0 / 12.0)

    def test_bounds_validated(self):
        with pytest.raises(SpecificationError):
            Uniform(2.0, 2.0)
        with pytest.raises(SpecificationError):
            Uniform(-1.0, 1.0)

    def test_samples_in_range(self):
        dist = Uniform(0.5, 1.5)
        generator = rng()
        values = [dist.sample(generator) for _ in range(1000)]
        assert all(0.5 <= value <= 1.5 for value in values)


class TestErlang:
    def test_moments(self):
        dist = Erlang(3, 2.0)
        assert dist.mean == pytest.approx(1.5)
        assert dist.variance == pytest.approx(0.75)

    def test_shape_validated(self):
        with pytest.raises(SpecificationError):
            Erlang(0, 1.0)

    def test_sampling_mean(self):
        dist = Erlang(4, 2.0)
        generator = rng()
        values = np.array([dist.sample(generator) for _ in range(20000)])
        assert values.mean() == pytest.approx(2.0, rel=0.05)


class TestWeibull:
    def test_exponential_special_case_moments(self):
        """k=1 reduces to Exponential(1/lam)."""
        dist = Weibull(1.0, 2.0)
        assert dist.mean == pytest.approx(2.0)
        assert dist.variance == pytest.approx(4.0)

    def test_parameters_validated(self):
        with pytest.raises(SpecificationError):
            Weibull(0.0, 1.0)
        with pytest.raises(SpecificationError):
            Weibull(1.0, -1.0)

    def test_sampling_mean(self):
        dist = Weibull(2.0, 1.0)
        generator = rng()
        values = np.array([dist.sample(generator) for _ in range(20000)])
        assert values.mean() == pytest.approx(dist.mean, rel=0.05)


class TestFactory:
    def test_make_by_keyword(self):
        assert make_distribution("det", [2.0]) == Deterministic(2.0)
        assert make_distribution("exp", [3.0]) == Exponential(3.0)
        assert make_distribution("normal", [1.0, 0.1]) == Normal(1.0, 0.1)

    def test_unknown_keyword(self):
        with pytest.raises(SpecificationError, match="unknown distribution"):
            make_distribution("zeta", [1.0])

    def test_wrong_arity(self):
        with pytest.raises(SpecificationError, match="expects 2"):
            make_distribution("normal", [1.0])

    def test_erlang_shape_coerced_to_int(self):
        assert make_distribution("erlang", [3.0, 1.0]).shape == 3

    def test_pareto_keyword(self):
        assert make_distribution("pareto", [1.2, 9.7]) == Pareto(1.2, 9.7)


class TestPareto:
    def test_moments(self):
        dist = Pareto(3.0, 2.0)
        assert dist.mean == pytest.approx(3.0)
        assert dist.variance == pytest.approx(3.0)

    def test_heavy_tail_moments_are_infinite(self):
        assert math.isinf(Pareto(0.9, 1.0).mean)  # alpha <= 1
        assert math.isinf(Pareto(1.5, 1.0).variance)  # alpha <= 2

    def test_parameters_validated(self):
        with pytest.raises(SpecificationError):
            Pareto(0.0, 1.0)
        with pytest.raises(SpecificationError):
            Pareto(1.5, -1.0)

    def test_samples_respect_the_scale_floor(self):
        dist = Pareto(1.5, 3.0)
        generator = rng()
        values = [dist.sample(generator) for _ in range(2000)]
        assert all(value >= 3.0 for value in values)

    def test_sampling_mean(self):
        dist = Pareto(4.0, 1.0)
        generator = rng()
        values = np.array([dist.sample(generator) for _ in range(20000)])
        assert values.mean() == pytest.approx(dist.mean, rel=0.05)

    def test_cdf(self):
        dist = Pareto(2.0, 1.0)
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == 0.0
        assert dist.cdf(2.0) == pytest.approx(0.75)

    def test_str(self):
        assert str(Pareto(1.5, 3.0)) == "pareto(1.5, 3)"


class TestSpecStrings:
    """The compact ``keyword:arg,...`` form shared with --workload."""

    def test_parses_every_family(self):
        assert parse_distribution_spec("exp:0.103") == Exponential(0.103)
        assert parse_distribution_spec("det:2.5") == Deterministic(2.5)
        assert parse_distribution_spec("normal:0.8,0.0345") == Normal(
            0.8, 0.0345
        )
        assert parse_distribution_spec("unif:1,3") == Uniform(1.0, 3.0)
        assert parse_distribution_spec("erlang:3,2") == Erlang(3, 2.0)
        assert parse_distribution_spec("weibull:2,1") == Weibull(2.0, 1.0)
        assert parse_distribution_spec("pareto:1.2,9.7") == Pareto(1.2, 9.7)

    def test_make_distribution_accepts_specs(self):
        assert make_distribution("pareto:1.2,9.7") == Pareto(1.2, 9.7)
        assert make_distribution("normal:0.8,0.0345") == Normal(0.8, 0.0345)

    def test_whitespace_is_tolerated(self):
        assert parse_distribution_spec(" normal : 0.8 , 0.0345 ") == Normal(
            0.8, 0.0345
        )

    def test_empty_spec(self):
        with pytest.raises(SpecificationError, match="empty distribution"):
            parse_distribution_spec("")
        with pytest.raises(SpecificationError, match="empty distribution"):
            parse_distribution_spec("   ")

    def test_unknown_keyword_lists_known(self):
        with pytest.raises(SpecificationError, match="known:.*pareto"):
            parse_distribution_spec("zeta:1.0")

    def test_missing_arguments_show_the_template(self):
        with pytest.raises(
            SpecificationError, match="normal:<value>,<value>"
        ):
            parse_distribution_spec("normal")
        with pytest.raises(SpecificationError, match="missing its arg"):
            parse_distribution_spec("exp:")

    def test_bad_argument_is_pinpointed(self):
        with pytest.raises(
            SpecificationError, match="argument 2 \\('fast'\\)"
        ):
            parse_distribution_spec("pareto:1.5,fast")

    def test_wrong_arity_reports_counts(self):
        with pytest.raises(SpecificationError, match="expects 2.*got 3"):
            parse_distribution_spec("normal:1,2,3")

    def test_non_integral_erlang_shape_rejected(self):
        with pytest.raises(SpecificationError, match="Erlang shape"):
            parse_distribution_spec("erlang:2.5,1.0")


@given(rate=st.floats(0.01, 100.0))
def test_exponential_mean_variance_relation(rate):
    dist = Exponential(rate)
    assert dist.variance == pytest.approx(dist.mean**2)


@given(value=st.floats(0.0, 1e6))
def test_deterministic_mean_equals_value(value):
    assert Deterministic(value).mean == value


@settings(max_examples=25, deadline=None)
@given(
    mean=st.floats(0.5, 50.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_exponential_equivalent_preserves_mean(mean, seed):
    for dist in (
        Deterministic(mean),
        Uniform(mean * 0.5, mean * 1.5),
        Erlang(3, 3.0 / mean),
    ):
        assert dist.exponential_equivalent().mean == pytest.approx(mean)

"""CLI tests for the observability commands and flags.

Covers ``trace-summary`` and ``metrics`` end to end (exit codes, empty
and malformed inputs) and the ``--metrics-out`` flag on ``run-sweep``:
the exports must cover solver iterations, sim event throughput, cache
events and retry/span counters for both case studies.
"""

import json

import pytest

from repro.experiments.cli import main
from repro.obs import MetricRegistry, load_json_export, use_registry
from repro.runtime.trace import TraceRecorder


@pytest.fixture()
def trace_file(tmp_path):
    """A small valid JSONL trace written by the runtime recorder."""
    path = str(tmp_path / "trace.jsonl")
    recorder = TraceRecorder(path, emit_metrics=False)
    recorder.record("solve", index=0, wall=0.1)
    recorder.record("solve", index=1, status="retry", wall=0.2)
    recorder.record("simulate", index=0, wall=0.3)
    recorder.close()
    return path


class TestTraceSummary:
    def test_valid_trace(self, trace_file, capsys):
        assert main(["trace-summary", trace_file]) == 0
        out = capsys.readouterr().out
        assert "solve" in out
        assert "retry" in out

    def test_missing_file(self, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace-summary", missing]) == 1

    def test_empty_file_is_valid(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-summary", str(path)]) == 0

    def test_malformed_middle_line(self, trace_file):
        with open(trace_file) as handle:
            lines = handle.read().splitlines()
        lines[1] = '{"phase": "solve", TORN'
        with open(trace_file, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert main(["trace-summary", trace_file]) == 1

    def test_torn_final_line_tolerated(self, trace_file, capsys):
        with open(trace_file, "a") as handle:
            handle.write('{"phase": "solve", "ev')  # crash mid-write
        assert main(["trace-summary", trace_file]) == 0
        assert "solve" in capsys.readouterr().out


class TestMetricsCommand:
    def test_catalog_listing(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "repro_solver_iterations_total" in out
        assert "repro_sim_events_total" in out
        assert "repro_cache_events_total" in out
        assert "histogram" in out

    def test_inspect_valid_export(self, tmp_path, capsys):
        export = tmp_path / "run.json"
        registry = MetricRegistry()
        registry.counter(
            "repro_cache_events_total", "Cache.", ("kind",)
        ).labels(kind="hit").inc(3)
        registry.histogram("repro_solver_seconds", "S.", ()).observe(0.1)
        export.write_text(json.dumps(registry.snapshot()))
        assert main(["metrics", str(export)]) == 0
        out = capsys.readouterr().out
        assert "kind=hit" in out
        assert "count=1" in out  # histogram rendering

    def test_missing_file(self, tmp_path):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 1

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert main(["metrics", str(path)]) == 1

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": closed')
        assert main(["metrics", str(path)]) == 1

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "array.json"
        path.write_text("[1, 2, 3]")
        assert main(["metrics", str(path)]) == 1


def _value(snapshot, name, **labels):
    total = 0.0
    for entry in snapshot.get(name, {}).get("series", ()):
        if all(entry["labels"].get(k) == v for k, v in labels.items()):
            total += entry.get("value", entry.get("count", 0))
    return total


class TestMetricsOut:
    def _run_sweep(self, tmp_path, extra):
        prefix = str(tmp_path / "metrics")
        with use_registry(MetricRegistry()):
            code = main(
                ["run-sweep", "--metrics-out", prefix, "--retry", "2"]
                + extra
            )
        assert code == 0
        return load_json_export(prefix + ".json")

    def test_rpc_markovian_export(self, tmp_path, capsys):
        snapshot = self._run_sweep(
            tmp_path,
            [
                "--case", "rpc", "--phase", "markovian",
                "--parameter", "shutdown_timeout", "--values", "1,5,11",
            ],
        )
        out = capsys.readouterr().out
        assert "[metrics written to" in out
        assert (tmp_path / "metrics.prom").exists()
        assert _value(snapshot, "repro_solver_iterations_total") >= 3
        assert _value(snapshot, "repro_solver_solves_total") == 3
        assert _value(snapshot, "repro_cache_events_total", kind="miss") == 1
        assert (
            _value(snapshot, "repro_cache_events_total", kind="relabel")
            == 2
        )
        assert (
            _value(
                snapshot, "repro_sweep_points_total",
                case="rpc", kind="markovian",
            )
            == 3
        )
        # --retry engages the resilient executor + span tracer
        assert _value(snapshot, "repro_runtime_spans_total") >= 3
        assert _value(snapshot, "repro_executor_tasks_total") >= 3

    def test_rpc_general_export_covers_simulation(self, tmp_path):
        snapshot = self._run_sweep(
            tmp_path,
            [
                "--case", "rpc", "--phase", "general",
                "--parameter", "shutdown_timeout", "--values", "5",
                "--runs", "2", "--run-length", "500", "--warmup", "0",
            ],
        )
        assert _value(snapshot, "repro_sim_runs_total") == 2
        assert _value(snapshot, "repro_sim_events_total") > 0
        assert _value(snapshot, "repro_sim_run_seconds") == 2  # histogram
        assert (
            _value(
                snapshot, "repro_sweep_points_total",
                case="rpc", kind="general",
            )
            == 1
        )

    def test_streaming_markovian_export(self, tmp_path):
        snapshot = self._run_sweep(
            tmp_path,
            [
                "--case", "streaming", "--phase", "markovian",
                "--parameter", "awake_period", "--values", "100,200",
            ],
        )
        assert _value(snapshot, "repro_solver_solves_total") == 2
        assert _value(snapshot, "repro_solver_iterations_total") >= 2
        assert _value(snapshot, "repro_cache_events_total", kind="miss") == 1
        assert (
            _value(
                snapshot, "repro_sweep_points_total",
                case="streaming", kind="markovian",
            )
            == 2
        )
        assert _value(snapshot, "repro_runtime_spans_total") >= 2

    def test_prometheus_export_parses(self, tmp_path):
        prefix = str(tmp_path / "metrics")
        with use_registry(MetricRegistry()):
            assert (
                main(
                    [
                        "run-sweep", "--metrics-out", prefix,
                        "--case", "rpc", "--phase", "markovian",
                        "--parameter", "shutdown_timeout", "--values", "5",
                    ]
                )
                == 0
            )
        with open(prefix + ".prom") as handle:
            text = handle.read()
        assert "# TYPE repro_solver_solves_total counter" in text
        assert 'repro_solver_solves_total{method="direct"} 1' in text
        assert "repro_solver_seconds_bucket" in text

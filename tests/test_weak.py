"""Tests for weak (observational) equivalence and tau condensation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lts import (
    TAU,
    WeakStructure,
    build_lts,
    check_weak_equivalence,
    weak_bisimulation,
)
from repro.lts.weak import tau_condensation


class TestWeakStructure:
    def test_tau_closure_includes_self(self):
        lts = build_lts(3, [(0, TAU, 1), (1, TAU, 2)])
        structure = WeakStructure(lts)
        assert structure.tau_closure(0) == frozenset({0, 1, 2})
        assert structure.tau_closure(2) == frozenset({2})

    def test_weak_successors_pad_with_tau(self):
        lts = build_lts(
            4, [(0, TAU, 1), (1, "a", 2), (2, TAU, 3)]
        )
        structure = WeakStructure(lts)
        assert structure.weak_successors(0, "a") == frozenset({2, 3})

    def test_weak_tau_successors_include_self(self):
        lts = build_lts(2, [(0, TAU, 1)])
        structure = WeakStructure(lts)
        assert structure.weak_successors(0, TAU) == frozenset({0, 1})

    def test_weak_labels(self):
        lts = build_lts(3, [(0, TAU, 1), (1, "a", 2)])
        structure = WeakStructure(lts)
        assert structure.weak_labels(0) == {"a"}
        assert structure.weak_labels(2) == set()


class TestClassicalExamples:
    def test_tau_prefix_is_weakly_equivalent(self):
        """a.b ~weak~ a.tau.b (Milner's tau law)."""
        direct = build_lts(3, [(0, "a", 1), (1, "b", 2)])
        padded = build_lts(4, [(0, "a", 1), (1, TAU, 2), (2, "b", 3)])
        assert check_weak_equivalence(direct, padded).equivalent

    def test_coffee_machines_not_weakly_equivalent(self, coffee_machines):
        deterministic, nondeterministic = coffee_machines
        assert not check_weak_equivalence(
            deterministic, nondeterministic
        ).equivalent

    def test_internal_choice_not_equivalent(self):
        """a.b vs a.(tau.b + tau.c): the second may silently refuse b."""
        simple = build_lts(3, [(0, "a", 1), (1, "b", 2)])
        choosy = build_lts(
            5,
            [(0, "a", 1), (1, TAU, 2), (1, TAU, 3), (2, "b", 4), (3, "c", 4)],
        )
        assert not check_weak_equivalence(simple, choosy).equivalent

    def test_tau_loop_collapses(self):
        """A tau cycle is weakly equivalent to a single state."""
        looping = build_lts(
            3, [(0, TAU, 1), (1, TAU, 0), (0, "a", 2), (1, "a", 2)]
        )
        flat = build_lts(2, [(0, "a", 1)])
        assert check_weak_equivalence(looping, flat).equivalent

    def test_divergence_is_ignored(self):
        """Weak bisimilarity is insensitive to tau self-loops."""
        diverging = build_lts(2, [(0, TAU, 0), (0, "a", 1)])
        plain = build_lts(2, [(0, "a", 1)])
        assert check_weak_equivalence(diverging, plain).equivalent


class TestTauCondensation:
    def test_collapses_cycles(self):
        lts = build_lts(
            4, [(0, TAU, 1), (1, TAU, 0), (1, "a", 2), (2, TAU, 3)]
        )
        quotient, state_map = tau_condensation(lts)
        assert quotient.num_states == 3
        assert state_map[0] == state_map[1]
        assert state_map[2] != state_map[3]  # one-way tau, not a cycle

    def test_drops_internal_tau_edges(self):
        lts = build_lts(2, [(0, TAU, 1), (1, TAU, 0)])
        quotient, _ = tau_condensation(lts)
        assert quotient.num_states == 1
        assert quotient.num_transitions == 0

    def test_preserves_visible_structure(self):
        lts = build_lts(3, [(0, "a", 1), (1, "b", 2)])
        quotient, state_map = tau_condensation(lts)
        assert quotient.num_states == 3
        assert quotient.num_transitions == 2

    def test_initial_state_mapped(self):
        lts = build_lts(2, [(0, TAU, 1), (1, TAU, 0)], initial=1)
        quotient, state_map = tau_condensation(lts)
        assert quotient.initial == state_map[1]

    def test_deduplicates_parallel_edges(self):
        lts = build_lts(
            4,
            [(0, TAU, 1), (1, TAU, 0), (0, "a", 2), (1, "a", 2), (2, "b", 3)],
        )
        quotient, _ = tau_condensation(lts)
        a_edges = [t for t in quotient.transitions if t.label == "a"]
        assert len(a_edges) == 1


class TestWeakBisimulationResult:
    def test_equivalent_accepts_original_indices(self):
        lts = build_lts(
            4, [(0, TAU, 1), (1, TAU, 0), (0, "a", 2), (1, "a", 3)]
        )
        result = weak_bisimulation(lts)
        assert result.equivalent(0, 1)
        assert result.equivalent(2, 3)
        assert not result.equivalent(0, 2)


@st.composite
def random_weak_lts(draw, max_states=5):
    n = draw(st.integers(1, max_states))
    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from(["a", "b", TAU]),
                st.integers(0, n - 1),
            ),
            max_size=10,
        )
    )
    return build_lts(n, transitions)


@settings(max_examples=50, deadline=None)
@given(random_weak_lts())
def test_weak_equivalence_reflexive(lts):
    assert check_weak_equivalence(lts, lts).equivalent


@settings(max_examples=50, deadline=None)
@given(random_weak_lts(), random_weak_lts())
def test_weak_equivalence_symmetric(first, second):
    forward = check_weak_equivalence(first, second).equivalent
    backward = check_weak_equivalence(second, first).equivalent
    assert forward == backward


@settings(max_examples=50, deadline=None)
@given(random_weak_lts())
def test_strong_implies_weak(lts):
    from repro.lts import strongly_bisimilar

    # Strongly bisimilar states are weakly bisimilar: compare the system
    # against itself with a fresh copy (trivially strongly bisimilar).
    copy = lts.copy()
    if strongly_bisimilar(lts, copy):
        assert check_weak_equivalence(lts, copy).equivalent


@settings(max_examples=40, deadline=None)
@given(random_weak_lts())
def test_condensation_preserves_weak_equivalence(lts):
    quotient, _ = tau_condensation(lts)
    assert check_weak_equivalence(lts, quotient).equivalent

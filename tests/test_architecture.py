"""Tests for architecture-level validation and const binding."""

import pytest

from repro.aemilia import builder as b
from repro.aemilia import parse_architecture
from repro.aemilia.expressions import DataType, Literal, Variable, binop
from repro.errors import SpecificationError, TypeCheckError


def two_party(attachments, or_output=False):
    """A sender/receiver pair with configurable attachments."""
    sender = b.elem_type(
        "Sender_Type",
        [b.process("Send", b.prefix("emit", b.passive(), b.call("Send")))],
        outputs=[] if or_output else ["emit"],
        or_outputs=["emit"] if or_output else [],
    )
    receiver = b.elem_type(
        "Receiver_Type",
        [b.process("Recv", b.prefix("take", b.passive(), b.call("Recv")))],
        inputs=["take"],
    )
    return b.archi(
        "Pair",
        [sender, receiver],
        [
            b.instance("A", "Sender_Type"),
            b.instance("B", "Receiver_Type"),
            b.instance("B2", "Receiver_Type"),
        ],
        attachments,
    )


class TestAttachmentRules:
    def test_valid_uni_attachment(self):
        archi = two_party([b.attach("A.emit", "B.take")])
        assert len(archi.attachments) == 1

    def test_output_to_output_rejected(self):
        sender = b.elem_type(
            "S_Type",
            [b.process("S", b.prefix("emit", b.passive(), b.call("S")))],
            outputs=["emit"],
        )
        with pytest.raises(SpecificationError, match="not an input"):
            b.archi(
                "Bad",
                [sender],
                [b.instance("A", "S_Type"), b.instance("B", "S_Type")],
                [b.attach("A.emit", "B.emit")],
            )

    def test_self_attachment_rejected(self):
        loop = b.elem_type(
            "L_Type",
            [
                b.process(
                    "L",
                    b.choice(
                        b.prefix("out_x", b.passive(), b.call("L")),
                        b.prefix("in_x", b.passive(), b.call("L")),
                    ),
                )
            ],
            inputs=["in_x"],
            outputs=["out_x"],
        )
        with pytest.raises(SpecificationError, match="itself"):
            b.archi(
                "Selfie",
                [loop],
                [b.instance("A", "L_Type")],
                [b.attach("A.out_x", "A.in_x")],
            )

    def test_uni_double_attachment_rejected(self):
        with pytest.raises(SpecificationError, match="UNI"):
            two_party(
                [b.attach("A.emit", "B.take"), b.attach("A.emit", "B2.take")]
            )

    def test_or_output_multi_attachment_allowed(self):
        archi = two_party(
            [b.attach("A.emit", "B.take"), b.attach("A.emit", "B2.take")],
            or_output=True,
        )
        assert len(archi.attachments_from("A", "emit")) == 2

    def test_unknown_instance_in_attachment(self):
        with pytest.raises(SpecificationError, match="unknown instance"):
            two_party([b.attach("Ghost.emit", "B.take")])

    def test_unknown_interaction_in_attachment(self):
        with pytest.raises(SpecificationError, match="no interaction"):
            two_party([b.attach("A.nothing", "B.take")])


class TestInstances:
    def test_duplicate_instance_names_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [b.process("Main", b.prefix("a", b.passive(), b.call("Main")))],
        )
        with pytest.raises(SpecificationError, match="declared twice"):
            b.archi(
                "Dups",
                [elem],
                [b.instance("X", "T_Type"), b.instance("X", "T_Type")],
            )

    def test_unknown_type_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [b.process("Main", b.prefix("a", b.passive(), b.call("Main")))],
        )
        with pytest.raises(SpecificationError, match="unknown type"):
            b.archi("Bad", [elem], [b.instance("X", "Ghost_Type")])

    def test_no_instances_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [b.process("Main", b.prefix("a", b.passive(), b.call("Main")))],
        )
        with pytest.raises(SpecificationError, match="no instances"):
            b.archi("Empty", [elem], [])

    def test_missing_required_argument_rejected(self):
        elem = b.elem_type(
            "Cnt_Type",
            [
                b.process(
                    "Main",
                    b.prefix("a", b.passive(), b.call("Main", Variable("n"))),
                    formals=[b.formal("n")],  # no default
                )
            ],
        )
        with pytest.raises(SpecificationError, match="misses a value"):
            b.archi("NeedArg", [elem], [b.instance("X", "Cnt_Type")])

    def test_too_many_arguments_rejected(self):
        elem = b.elem_type(
            "T_Type",
            [b.process("Main", b.prefix("a", b.passive(), b.call("Main")))],
        )
        with pytest.raises(SpecificationError, match="passes 1"):
            b.archi("TooMany", [elem], [b.instance("X", "T_Type", 3)])

    def test_argument_type_checked(self):
        elem = b.elem_type(
            "Cnt_Type",
            [
                b.process(
                    "Main",
                    b.prefix("a", b.passive(), b.call("Main", Variable("n"))),
                    formals=[b.formal("n", DataType.INT)],
                )
            ],
        )
        with pytest.raises(TypeCheckError):
            b.archi("BadArg", [elem], [b.instance("X", "Cnt_Type", True)])


class TestConstBinding:
    def test_defaults(self, mm1k):
        env = mm1k.bind_constants()
        assert env == {
            "capacity": 3,
            "arrival_rate": 1.0,
            "service_rate": 2.0,
        }

    def test_overrides(self, mm1k):
        env = mm1k.bind_constants({"capacity": 5, "arrival_rate": 0.5})
        assert env["capacity"] == 5
        assert env["arrival_rate"] == 0.5
        assert env["service_rate"] == 2.0

    def test_int_override_for_real_param_coerced(self, mm1k):
        env = mm1k.bind_constants({"arrival_rate": 3})
        assert env["arrival_rate"] == 3.0
        assert isinstance(env["arrival_rate"], float)

    def test_unknown_override_rejected(self, mm1k):
        with pytest.raises(SpecificationError, match="unknown const"):
            mm1k.bind_constants({"nonsense": 1})

    def test_bad_override_type_rejected(self, mm1k):
        with pytest.raises(TypeCheckError):
            mm1k.bind_constants({"capacity": 2.5})

    def test_defaults_may_reference_earlier_consts(self):
        archi = parse_architecture("""
ARCHI_TYPE Chain_Archi(const real base := 2.0,
                       const real double := base * 2)
ARCHI_ELEM_TYPES
ELEM_TYPE T_Type(void)
  BEHAVIOR
    Main(void; void) = <a, exp(double)> . Main()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T_Type()
END
""")
        env = archi.bind_constants()
        assert env["double"] == 4.0
        env = archi.bind_constants({"base": 3.0})
        assert env["double"] == 6.0

    def test_describe_mentions_everything(self, pingpong):
        text = pingpong.describe()
        assert "P : Ping_Type" in text
        assert "FROM P.send_ping TO Q.receive_ping" in text

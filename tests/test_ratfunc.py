"""Property tests of the rational-function layer (repro.ctmc.ratfunc).

The exact ``Polynomial`` / ``RationalFunction`` classes must be honest
ring homomorphisms under evaluation — ``(f op g)(v) == f(v) op g(v)``
over exact Fractions for every operation the parametric atom builder
uses (add, sub, mul, div, compose) — and the AAA reconstruction must
round-trip pole-free rational functions through sampled values without
inventing spurious poles inside (or at the boundaries of) the sweep
domain.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ctmc.ratfunc import (
    BarycentricRational,
    Polynomial,
    RationalFunction,
    aaa_fit,
)
from repro.errors import ParametricError

#: Small exact coefficients keep the closed-form oracles fast while the
#: arithmetic (cross-multiplication, gcd cancellation) is fully general.
coefficients = st.fractions(
    min_value=-4, max_value=4, max_denominator=8
)
polynomials = st.builds(
    Polynomial, st.lists(coefficients, max_size=5)
)
nonzero_polynomials = polynomials.filter(lambda p: not p.is_zero)
rationals = st.builds(RationalFunction, polynomials, nonzero_polynomials)
nonzero_rationals = rationals.filter(lambda f: not f.num.is_zero)
points = st.fractions(min_value=-3, max_value=3, max_denominator=7)


def _chebyshev(low: float, high: float, count: int) -> np.ndarray:
    angles = np.pi * np.arange(count) / (count - 1)
    return (low + high) / 2.0 - (high - low) / 2.0 * np.cos(
        np.pi - angles
    )


class TestPolynomial:
    @given(polynomials, polynomials, points)
    @settings(max_examples=60, deadline=None)
    def test_add_mul_evaluate_pointwise(self, p, q, v):
        assert (p + q).evaluate(v) == p.evaluate(v) + q.evaluate(v)
        assert (p * q).evaluate(v) == p.evaluate(v) * q.evaluate(v)
        assert (p - q).evaluate(v) == p.evaluate(v) - q.evaluate(v)

    @given(polynomials, polynomials)
    @settings(max_examples=60, deadline=None)
    def test_ring_laws(self, p, q):
        assert p + q == q + p
        assert p * q == q * p
        assert p + Polynomial() == p
        assert p * Polynomial.constant(1) == p
        assert p - p == Polynomial()

    @given(polynomials)
    @settings(max_examples=60, deadline=None)
    def test_trimming_normalises_trailing_zeros(self, p):
        padded = Polynomial(tuple(p.coeffs) + (0, 0, 0))
        assert padded == p
        assert padded.degree == p.degree

    @given(polynomials, points)
    @settings(max_examples=60, deadline=None)
    def test_float_evaluation_tracks_exact(self, p, v):
        exact = float(p.evaluate(v))
        approximate = p.evaluate_float(float(v))
        assert approximate == pytest.approx(exact, rel=1e-9, abs=1e-9)


class TestRationalFunction:
    @given(rationals, rationals, points)
    @settings(max_examples=80, deadline=None)
    def test_field_operations_evaluate_pointwise(self, f, g, v):
        try:
            fv, gv = f.evaluate(v), g.evaluate(v)
        except ZeroDivisionError:
            assume(False)
        assert (f + g).evaluate(v) == fv + gv
        assert (f - g).evaluate(v) == fv - gv
        assert (f * g).evaluate(v) == fv * gv
        if gv != 0 and not g.num.is_zero:
            try:
                quotient = (f / g).evaluate(v)
            except ZeroDivisionError:
                assume(False)
            assert quotient == fv / gv

    @given(rationals, nonzero_rationals)
    @settings(max_examples=60, deadline=None)
    def test_cancellation_round_trips(self, f, g):
        # Normalisation (gcd + monic denominator) makes structurally
        # equal functions compare equal, so (f*g)/g must give f back.
        assert (f * g) / g == f

    @given(rationals)
    @settings(max_examples=60, deadline=None)
    def test_denominator_is_monic(self, f):
        assert f.den.coeffs[-1] == 1

    @given(rationals, rationals, points)
    @settings(max_examples=60, deadline=None)
    def test_compose_evaluates_inside_out(self, f, inner, v):
        try:
            inner_value = inner.evaluate(v)
            expected = f.evaluate(inner_value)
            composed = f.compose(inner)
        except ZeroDivisionError:
            assume(False)
        assert composed.evaluate(v) == expected

    @given(rationals, points)
    @settings(max_examples=60, deadline=None)
    def test_node_evaluation_matches_float_evaluation(self, f, v):
        value = float(v)
        try:
            exact = float(f.evaluate(v))
        except ZeroDivisionError:
            assume(False)
        nodes = np.array([value, value + 0.5])
        evaluated = f.evaluate_nodes(nodes)
        assert evaluated[0] == pytest.approx(exact, rel=1e-9, abs=1e-9)
        assert evaluated[0] == f.evaluate_float(value)

    def test_zero_denominator_is_rejected(self):
        with pytest.raises(ZeroDivisionError):
            RationalFunction(Polynomial.x(), Polynomial())

    def test_pole_evaluation_is_an_error_not_a_value(self):
        f = RationalFunction.constant(1) / RationalFunction.x()
        with pytest.raises(ZeroDivisionError, match="pole"):
            f.evaluate(0)


class TestAAAReconstruction:
    DOMAIN = (1.0, 2.0)

    def _fit(self, function, count=33, **kwargs):
        low, high = self.DOMAIN
        nodes = _chebyshev(low, high, count)
        return nodes, aaa_fit(nodes, function(nodes), **kwargs)

    @given(
        st.lists(st.integers(-3, 3), min_size=1, max_size=4),
        st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_pole_free_rationals_round_trip(self, num_coeffs, bump):
        # f = num(x) / (1 + bump * (x - 3)^2): the denominator is
        # strictly positive on the real line, so f is smooth over any
        # sweep domain and AAA must recover it to holdout tolerance.
        assume(any(num_coeffs))
        num = Polynomial(num_coeffs)
        shift = Polynomial([-3, 1])
        den = Polynomial([1]) + (shift * shift).scale(bump)
        f = RationalFunction(num, den)
        nodes, (fit, error) = self._fit(f.evaluate_nodes)
        assert error <= 1e-11
        low, high = self.DOMAIN
        grid = np.linspace(low, high, 101)
        exact = f.evaluate_nodes(grid)
        scale = np.abs(exact).max()
        assert np.abs(fit(grid) - exact).max() <= 1e-9 * scale
        # Pole avoidance: nothing spurious inside the sweep domain,
        # boundaries included.
        assert fit.real_poles_in(low, high).size == 0

    def test_nearby_exterior_pole_stays_exterior(self):
        # A true pole just outside the domain is the hard case for the
        # spectral check: the fit must place its pole outside [1, 2]
        # rather than aliasing it across the boundary.
        nodes, (fit, error) = self._fit(lambda x: 1.0 / (x - 0.9))
        assert error <= 1e-11
        assert fit.real_poles_in(*self.DOMAIN).size == 0
        poles = fit.poles()
        real = poles[np.abs(poles.imag) < 1e-8].real
        assert np.any(np.abs(real - 0.9) < 1e-6)

    def test_support_nodes_interpolate_exactly(self):
        nodes, (fit, _) = self._fit(lambda x: (x + 1.0) / (x + 3.0))
        for node, value in zip(fit.nodes, fit.values):
            assert fit(float(node)) == value

    def test_zero_function_fits_trivially(self):
        nodes = _chebyshev(*self.DOMAIN, 17)
        fit, error = aaa_fit(nodes, np.zeros_like(nodes))
        assert error == 0.0
        assert fit(1.5) == 0.0

    def test_non_rational_function_exhausts_the_budget(self):
        with pytest.raises(ParametricError) as info:
            self._fit(lambda x: np.abs(x - 1.5), max_support=4)
        assert info.value.reason == "budget"

    def test_sample_validation(self):
        nodes = _chebyshev(*self.DOMAIN, 9)
        with pytest.raises(ParametricError, match="one-dimensional"):
            aaa_fit(nodes, np.zeros(4))
        with pytest.raises(ParametricError, match="non-finite"):
            aaa_fit(nodes, np.full_like(nodes, np.nan))

    def test_barycentric_shape_validation(self):
        with pytest.raises(ParametricError, match="equal-length"):
            BarycentricRational(
                np.array([1.0]), np.array([1.0, 2.0]), np.array([1.0])
            )

"""Tests for replication output analysis and confidence intervals."""

import math

import numpy as np
import pytest

from repro.aemilia.rates import ExpRate
from repro.ctmc import measure, state_clause, trans_clause
from repro.errors import SimulationError
from repro.lts import LTS
from repro.sim import Estimate, replicate, summarize, spawn_generators


def simple_lts():
    lts = LTS(0)
    for _ in range(2):
        lts.add_state()
    lts.add_transition(0, "up", 1, ExpRate(2.0), "up")
    lts.add_transition(1, "down", 0, ExpRate(3.0), "down")
    return lts


class TestSummarize:
    def test_mean_and_halfwidth(self):
        estimate = summarize([1.0, 2.0, 3.0], confidence=0.90)
        assert estimate.mean == pytest.approx(2.0)
        assert estimate.runs == 3
        # half-width = t_{0.95,2} * s / sqrt(3) = 2.9199856 / sqrt(3).
        assert estimate.half_width == pytest.approx(
            2.9199856 / math.sqrt(3.0), rel=1e-4
        )

    def test_single_sample_infinite_interval(self):
        estimate = summarize([5.0])
        assert estimate.mean == 5.0
        assert math.isinf(estimate.half_width)

    def test_zero_samples_rejected(self):
        with pytest.raises(SimulationError):
            summarize([])

    def test_interval_bounds_and_overlap(self):
        estimate = Estimate(10.0, 1.0, 2.0, 5, 0.90)
        assert estimate.low == 9.0
        assert estimate.high == 11.0
        assert estimate.overlaps(10.5)
        assert not estimate.overlaps(12.0)

    def test_interval_intersection(self):
        a = Estimate(10.0, 1.0, 1.0, 5, 0.90)
        b = Estimate(11.5, 1.0, 1.0, 5, 0.90)
        c = Estimate(13.0, 0.5, 1.0, 5, 0.90)
        assert a.overlaps_estimate(b)
        assert not a.overlaps_estimate(c)

    def test_higher_confidence_widens_interval(self):
        narrow = summarize([1.0, 2.0, 3.0, 4.0], confidence=0.90)
        wide = summarize([1.0, 2.0, 3.0, 4.0], confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_str_format(self):
        estimate = summarize([1.0, 2.0, 3.0])
        text = str(estimate)
        assert "±" in text and "n=3" in text


class TestReplicate:
    def test_estimates_for_all_measures(self):
        measures = [
            measure("in0", state_clause("up", 1.0)),
            measure("ups", trans_clause("up", 1.0)),
        ]
        result = replicate(
            simple_lts(), measures, run_length=2_000.0, runs=6, seed=42
        )
        assert set(result.estimates) == {"in0", "ups"}
        assert result["in0"].mean == pytest.approx(0.6, rel=0.05)
        assert len(result.samples["ups"]) == 6

    def test_deterministic_given_seed(self):
        measures = [measure("in0", state_clause("up", 1.0))]
        first = replicate(
            simple_lts(), measures, run_length=500.0, runs=4, seed=99
        )
        second = replicate(
            simple_lts(), measures, run_length=500.0, runs=4, seed=99
        )
        assert first.samples == second.samples

    def test_different_seeds_differ(self):
        measures = [measure("in0", state_clause("up", 1.0))]
        first = replicate(
            simple_lts(), measures, run_length=500.0, runs=4, seed=1
        )
        second = replicate(
            simple_lts(), measures, run_length=500.0, runs=4, seed=2
        )
        assert first.samples != second.samples

    def test_needs_two_runs(self):
        with pytest.raises(SimulationError):
            replicate(simple_lts(), [], run_length=100.0, runs=1)

    def test_interval_shrinks_with_more_runs(self):
        measures = [measure("in0", state_clause("up", 1.0))]
        few = replicate(
            simple_lts(), measures, run_length=500.0, runs=4, seed=5
        )
        many = replicate(
            simple_lts(), measures, run_length=500.0, runs=24, seed=5
        )
        assert many["in0"].half_width < few["in0"].half_width

    def test_coverage_of_true_value(self):
        """90% CI from 30 runs should cover the analytic 0.6 (seeded)."""
        measures = [measure("in0", state_clause("up", 1.0))]
        result = replicate(
            simple_lts(), measures, run_length=2_000.0, runs=30, seed=7
        )
        assert result["in0"].overlaps(0.6)


class TestSeedStreams:
    def test_spawned_generators_are_independent(self):
        first, second = spawn_generators(123, 2)
        a = first.random(5)
        b = second.random(5)
        assert not np.allclose(a, b)

    def test_spawn_reproducible(self):
        one = spawn_generators(321, 3)
        two = spawn_generators(321, 3)
        for g1, g2 in zip(one, two):
            assert np.allclose(g1.random(4), g2.random(4))


class TestReplicateUntil:
    def _measures(self):
        return [measure("in0", state_clause("up", 1.0))]

    def test_stops_when_precise(self):
        from repro.sim import replicate_until

        result = replicate_until(
            simple_lts(),
            self._measures(),
            run_length=2_000.0,
            relative_half_width=0.10,
            min_runs=3,
            max_runs=100,
            seed=11,
        )
        runs = result["in0"].runs
        assert 3 <= runs < 100
        estimate = result["in0"]
        assert estimate.half_width <= 0.10 * abs(estimate.mean)

    def test_tighter_target_needs_more_runs(self):
        from repro.sim import replicate_until

        loose = replicate_until(
            simple_lts(), self._measures(), run_length=200.0,
            relative_half_width=0.20, seed=13,
        )
        tight = replicate_until(
            simple_lts(), self._measures(), run_length=200.0,
            relative_half_width=0.02, max_runs=200, seed=13,
        )
        assert tight["in0"].runs >= loose["in0"].runs

    def test_max_runs_cap(self):
        from repro.sim import replicate_until

        result = replicate_until(
            simple_lts(), self._measures(), run_length=20.0,
            relative_half_width=0.0001, min_runs=2, max_runs=6, seed=17,
        )
        assert result["in0"].runs == 6

    def test_zero_measures_do_not_block_convergence(self):
        from repro.sim import replicate_until

        measures = self._measures() + [
            measure("never", trans_clause("ghost", 1.0))
        ]
        result = replicate_until(
            simple_lts(), measures, run_length=2_000.0,
            relative_half_width=0.10, min_runs=3, max_runs=50, seed=19,
        )
        assert result["never"].mean == 0.0
        assert result["in0"].runs < 50

    def test_parameter_validation(self):
        from repro.sim import replicate_until

        with pytest.raises(SimulationError):
            replicate_until(simple_lts(), self._measures(), 100.0,
                            relative_half_width=1.5)
        with pytest.raises(SimulationError):
            replicate_until(simple_lts(), self._measures(), 100.0,
                            min_runs=1)


class TestNearZeroIntervals:
    """Regression tests for the near-zero interval fix: symmetric
    Student-t intervals go negative (or collapse to zero width) exactly
    where rare-event probabilities live (docs/RELIABILITY.md)."""

    def test_wilson_zero_successes_has_positive_upper_bound(self):
        from repro.sim import wilson_interval

        low, high = wilson_interval(0, 20, confidence=0.95)
        assert low == pytest.approx(0.0, abs=1e-12)
        # k = 0 closed form: z^2 / (n + z^2).
        z = 1.959963984540054
        assert high == pytest.approx(z * z / (20 + z * z))
        assert high > 0.0

    def test_wilson_stays_inside_unit_interval(self):
        from repro.sim import wilson_interval

        for successes, trials in [(0, 5), (5, 5), (1, 3), (99, 100)]:
            low, high = wilson_interval(successes, trials)
            assert 0.0 <= low <= high <= 1.0

    def test_wilson_rejects_bad_counts(self):
        from repro.sim import wilson_interval

        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_log_scale_lower_bound_never_negative(self):
        from repro.sim import log_scale_interval

        # Symmetric t interval here: 1e-6 +- 2.776 * 2e-6 / sqrt(5),
        # i.e. a negative lower bound; the log-scale one stays > 0.
        low, high = log_scale_interval(1e-6, 2e-6, 5, confidence=0.95)
        assert 0.0 < low < 1e-6 < high

    def test_log_scale_is_multiplicative(self):
        from repro.sim import log_scale_interval

        low, high = log_scale_interval(1e-4, 5e-5, 10)
        assert high / 1e-4 == pytest.approx(1e-4 / low)

    def test_log_scale_rejects_degenerate_input(self):
        from repro.sim import log_scale_interval

        with pytest.raises(ValueError):
            log_scale_interval(0.0, 1.0, 10)
        with pytest.raises(ValueError):
            log_scale_interval(1e-6, 1.0, 1)

    def test_summarize_rare_all_zero_samples(self):
        from repro.sim import summarize_rare

        rare = summarize_rare([0.0] * 12, confidence=0.95)
        assert rare.method == "wilson"
        assert rare.mean == 0.0
        assert rare.low == pytest.approx(0.0, abs=1e-12)
        assert rare.high > 0.0
        assert not rare.overlaps(rare.high * 1.01)

    def test_summarize_rare_positive_samples_use_log_t(self):
        from repro.sim import summarize_rare

        rare = summarize_rare([1e-6, 3e-6, 2e-6, 5e-7], confidence=0.95)
        assert rare.method == "log-t"
        assert 0.0 < rare.low < rare.mean < rare.high

    def test_summarize_rare_rejects_negative_samples(self):
        from repro.sim import summarize_rare

        with pytest.raises(SimulationError):
            summarize_rare([0.1, -0.2])


class TestReplicateUntilAbsoluteFloor:
    """Regression tests for the absolute-floor stopping rule: a
    near-zero measure can never satisfy a *relative* half-width target,
    so without the floor the loop always burns max_runs."""

    def _blip_lts(self):
        # A rare "blip" transition: ~1.6 firings per 200-unit run, so
        # its rate samples hover noisily just above zero — the regime
        # where a relative half-width target is unreachable.
        lts = simple_lts()
        lts.add_transition(1, "blip", 0, ExpRate(0.02), "blip")
        return lts

    def _measures(self):
        return [
            measure("in0", state_clause("up", 1.0)),
            measure("blip_rate", trans_clause("blip", 1.0)),
        ]

    def test_absolute_floor_unblocks_near_zero_measure(self):
        from repro.sim import replicate_until

        floored = replicate_until(
            self._blip_lts(), self._measures(), run_length=200.0,
            relative_half_width=0.05, absolute_half_width=5e-3,
            min_runs=3, max_runs=40, seed=23,
        )
        assert floored["blip_rate"].runs < 40
        # Without the floor the relative criterion (5% of a ~0.008
        # mean) keeps the loop running to max_runs every time.
        unfloored = replicate_until(
            self._blip_lts(), self._measures(), run_length=200.0,
            relative_half_width=0.05, min_runs=3, max_runs=40, seed=23,
        )
        assert unfloored["blip_rate"].runs == 40

    def test_floor_does_not_loosen_the_healthy_measure(self):
        from repro.sim import replicate_until

        result = replicate_until(
            self._blip_lts(), self._measures(), run_length=2_000.0,
            relative_half_width=0.10, absolute_half_width=1e-6,
            min_runs=3, max_runs=100, seed=11,
        )
        estimate = result["in0"]
        assert estimate.half_width <= 0.10 * abs(estimate.mean)

    def test_absolute_floor_validation(self):
        from repro.sim import replicate_until

        with pytest.raises(SimulationError):
            replicate_until(
                self._blip_lts(), self._measures(), 100.0,
                absolute_half_width=0.0,
            )
        with pytest.raises(SimulationError):
            replicate_until(
                self._blip_lts(), self._measures(), 100.0,
                absolute_half_width=-1e-6,
            )

"""Tests for steady-state solvers against closed-form results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aemilia import generate_lts
from repro.ctmc import CTMC, build_ctmc, steady_state
from repro.errors import MarkovianError, SolverError


def two_state(rate_up=2.0, rate_down=3.0):
    ctmc = CTMC(2)
    ctmc.add_transition(0, 1, rate_up)
    ctmc.add_transition(1, 0, rate_down)
    return ctmc


def birth_death(rates_up, rates_down):
    n = len(rates_up) + 1
    initial = np.zeros(n)
    initial[0] = 1.0
    ctmc = CTMC(n, initial)
    for i, rate in enumerate(rates_up):
        ctmc.add_transition(i, i + 1, rate)
    for i, rate in enumerate(rates_down):
        ctmc.add_transition(i + 1, i, rate)
    return ctmc


class TestTwoState:
    def test_direct(self):
        pi = steady_state(two_state())
        assert pi == pytest.approx([0.6, 0.4])

    def test_gauss_seidel(self):
        pi = steady_state(two_state(), method="gauss_seidel")
        assert pi == pytest.approx([0.6, 0.4], rel=1e-8)

    def test_power(self):
        pi = steady_state(two_state(), method="power")
        assert pi == pytest.approx([0.6, 0.4], rel=1e-6)

    def test_unknown_method(self):
        with pytest.raises(SolverError, match="unknown"):
            steady_state(two_state(), method="magic")


class TestBirthDeath:
    def test_mm1k_closed_form(self):
        """M/M/1/K: pi_n proportional to rho^n."""
        lam, mu, K = 1.0, 2.0, 4
        ctmc = birth_death([lam] * K, [mu] * K)
        pi = steady_state(ctmc)
        rho = lam / mu
        expected = np.array([rho**n for n in range(K + 1)])
        expected /= expected.sum()
        assert pi == pytest.approx(expected, rel=1e-9)

    def test_solver_agreement(self):
        ctmc = birth_death([1.0, 2.0, 0.5], [3.0, 1.0, 2.0])
        direct = steady_state(ctmc, method="direct")
        gauss = steady_state(ctmc, method="gauss_seidel")
        power = steady_state(ctmc, method="power")
        assert direct == pytest.approx(gauss, abs=1e-8)
        assert direct == pytest.approx(power, abs=1e-6)


class TestStructureHandling:
    def test_transient_states_get_zero(self):
        ctmc = CTMC(3)
        ctmc.add_transition(0, 1, 1.0)  # 0 is transient
        ctmc.add_transition(1, 2, 2.0)
        ctmc.add_transition(2, 1, 3.0)
        pi = steady_state(ctmc)
        assert pi[0] == 0.0
        assert pi[1] == pytest.approx(0.6)
        assert pi[2] == pytest.approx(0.4)

    def test_absorbing_state(self):
        ctmc = CTMC(2)
        ctmc.add_transition(0, 1, 1.0)
        pi = steady_state(ctmc)
        assert pi == pytest.approx([0.0, 1.0])

    def test_multiple_bsccs_rejected(self):
        ctmc = CTMC(3)
        ctmc.add_transition(0, 1, 1.0)
        ctmc.add_transition(0, 2, 1.0)
        with pytest.raises(SolverError, match="bottom strongly connected"):
            steady_state(ctmc)

    def test_self_loops_do_not_affect_solution(self):
        plain = two_state()
        loopy = two_state()
        loopy.add_transition(0, 0, 10.0)
        assert steady_state(plain) == pytest.approx(steady_state(loopy))


class TestOnGeneratedModels:
    def test_mm1k_via_adl_matches_closed_form(self, mm1k):
        lts = generate_lts(mm1k, {"capacity": 3})
        ctmc = build_ctmc(lts)
        pi = steady_state(ctmc)
        # Map states to queue levels via the recorded state info.
        rho = 1.0 / 2.0
        expected = np.array([rho**n for n in range(4)])
        expected /= expected.sum()
        by_level = {}
        for state in range(ctmc.num_states):
            info = ctmc.state_info(state)
            for level in range(4):
                if f"n={level}" in info or (level == 0 and "n=0" in info):
                    by_level[level] = pi[state]
        assert [by_level[n] for n in range(4)] == pytest.approx(
            list(expected), rel=1e-9
        )


class TestChainValidation:
    def test_bad_initial_distribution(self):
        with pytest.raises(MarkovianError):
            CTMC(2, np.array([0.5, 0.4]))

    def test_nonpositive_rate_rejected(self):
        ctmc = CTMC(2)
        with pytest.raises(MarkovianError):
            ctmc.add_transition(0, 1, 0.0)

    def test_out_of_range_state_rejected(self):
        ctmc = CTMC(2)
        with pytest.raises(MarkovianError):
            ctmc.add_transition(0, 5, 1.0)


@settings(max_examples=30, deadline=None)
@given(
    rates=st.lists(
        st.tuples(st.floats(0.1, 10.0), st.floats(0.1, 10.0)),
        min_size=1,
        max_size=6,
    )
)
def test_birth_death_solution_properties(rates):
    """Any irreducible birth-death chain: pi >= 0, sums to 1, balances."""
    ups = [u for u, _ in rates]
    downs = [d for _, d in rates]
    ctmc = birth_death(ups, downs)
    pi = steady_state(ctmc)
    assert pi.sum() == pytest.approx(1.0)
    assert (pi >= 0).all()
    # Detailed balance holds for birth-death chains.
    for i, (up, down) in enumerate(zip(ups, downs)):
        assert pi[i] * up == pytest.approx(pi[i + 1] * down, rel=1e-6)

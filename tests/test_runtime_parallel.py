"""Parallel execution and structural caching must never change results.

The contract of :mod:`repro.runtime`: any sweep or replication run with
``workers=4`` is *identical* to ``workers=1`` — exact for the analytic
(CTMC) pipeline, bit-identical seeds and estimates for simulation — and a
cached (relabeled) state space is exactly the freshly generated one.
"""

import pytest

from repro.aemilia.semantics import generate_lts
from repro.casestudies import rpc, streaming
from repro.core.methodology import IncrementalMethodology
from repro.runtime import (
    ParallelExecutor,
    StructuralStateSpaceCache,
    generate_parametric,
    structural_params,
)
from repro.sim.output import replicate, replicate_until
from repro.sim.random import generator_for_run, spawn_generators

CASES = {
    "rpc": (rpc.family, "shutdown_timeout", [0.5, 2.0, 11.0, 25.0]),
    "streaming": (streaming.family, "awake_period", [10.0, 100.0]),
}


def _square(shared, item):
    return (shared or 0) + item * item


class TestParallelExecutor:
    def test_serial_and_parallel_map_agree(self):
        items = list(range(20))
        serial = ParallelExecutor(1).map(_square, items, shared=3)
        parallel = ParallelExecutor(4).map(_square, items, shared=3)
        assert serial == parallel == [3 + i * i for i in items]

    def test_empty_input(self):
        assert ParallelExecutor(4).map(_square, []) == []

    def test_order_is_input_order(self):
        items = [5, 1, 4, 2, 3]
        assert ParallelExecutor(4).map(_square, items) == [
            i * i for i in items
        ]


class TestSeedDerivation:
    def test_indexed_stream_matches_spawn(self):
        streams = spawn_generators(99, 6)
        for index, stream in enumerate(streams):
            clone = generator_for_run(99, index)
            assert clone.random(5).tolist() == stream.random(5).tolist()


@pytest.mark.parametrize("case", sorted(CASES))
class TestSweepEquivalence:
    def test_sweep_markovian_parallel_identical(self, case):
        family_fn, parameter, values = CASES[case]
        serial = IncrementalMethodology(family_fn()).sweep_markovian(
            parameter, values
        )
        parallel = IncrementalMethodology(
            family_fn(), workers=4
        ).sweep_markovian(parameter, values, workers=4)
        assert serial == parallel  # exact, not approximate

    def test_sweep_general_parallel_identical(self, case):
        family_fn, parameter, values = CASES[case]
        kwargs = dict(runs=3, run_length=400.0, warmup=50.0, seed=11)
        serial = IncrementalMethodology(family_fn()).sweep_general(
            parameter, values, **kwargs
        )
        parallel = IncrementalMethodology(
            family_fn(), workers=4
        ).sweep_general(parameter, values, workers=4, **kwargs)
        assert serial == parallel  # bit-identical streams by run index

    def test_cached_sweep_equals_uncached(self, case):
        family_fn, parameter, values = CASES[case]
        cached = IncrementalMethodology(family_fn()).sweep_markovian(
            parameter, values
        )
        uncached = IncrementalMethodology(
            family_fn(),
            statespace_cache=StructuralStateSpaceCache(enabled=False),
        ).sweep_markovian(parameter, values)
        assert cached == uncached


@pytest.mark.parametrize("case", sorted(CASES))
class TestStructuralCache:
    def test_swept_parameter_is_rate_only(self, case):
        family_fn, parameter, _ = CASES[case]
        family = family_fn()
        assert parameter not in structural_params(family.markovian_dpm)
        assert parameter not in structural_params(family.general_dpm)

    def test_relabel_is_bit_identical_to_regeneration(self, case):
        family_fn, parameter, values = CASES[case]
        archi = family_fn().markovian_dpm
        skeleton = generate_parametric(archi, {parameter: values[0]})
        for value in values[1:]:
            expected = generate_lts(archi, {parameter: value})
            relabeled = skeleton.relabel(
                archi.bind_constants({parameter: value})
            )
            assert relabeled.num_states == expected.num_states
            ours = [
                (t.source, t.label, t.target, repr(t.rate), t.weight)
                for t in relabeled.transitions
            ]
            theirs = [
                (t.source, t.label, t.target, repr(t.rate), t.weight)
                for t in expected.transitions
            ]
            assert ours == theirs

    def test_sweep_reuses_one_skeleton(self, case):
        family_fn, parameter, values = CASES[case]
        methodology = IncrementalMethodology(family_fn())
        methodology.sweep_markovian(parameter, values)
        stats = methodology.cache.stats
        assert stats.misses == 1  # state space generated once
        assert stats.relabels >= len(values) - 1


class TestParallelReplication:
    @pytest.fixture(scope="class")
    def rpc_general(self):
        methodology = IncrementalMethodology(rpc.family())
        return methodology.build_lts("general", "dpm"), list(
            methodology.family.measures
        )

    def test_replicate_bit_identical(self, rpc_general):
        lts, measures = rpc_general
        serial = replicate(lts, measures, 800.0, runs=5, warmup=50.0, seed=3)
        parallel = replicate(
            lts, measures, 800.0, runs=5, warmup=50.0, seed=3, workers=4
        )
        assert serial.samples == parallel.samples
        assert serial.estimates == parallel.estimates

    def test_replicate_until_bit_identical(self, rpc_general):
        lts, measures = rpc_general
        kwargs = dict(min_runs=3, max_runs=10, warmup=50.0, seed=3)
        serial = replicate_until(lts, measures, 400.0, **kwargs)
        parallel = replicate_until(
            lts, measures, 400.0, workers=4, **kwargs
        )
        assert serial.samples == parallel.samples

    def test_runtime_stats_reported(self):
        methodology = IncrementalMethodology(rpc.family(), workers=4)
        methodology.sweep_markovian("shutdown_timeout", [1.0, 5.0])
        stats = methodology.runtime_stats()
        assert stats["workers"] == 4
        assert stats["cache"]["misses"] == 1
        assert set(stats["timings"]) >= {"statespace", "solve"}

"""Tests for the LTS structure, label matching, operators, reachability."""

import pytest

from repro.aemilia.rates import ExpRate
from repro.errors import AnalysisError
from repro.lts import (
    LTS,
    TAU,
    build_lts,
    disjoint_union,
    hide,
    local_label,
    matches,
    matches_any,
    reachable_states,
    relabel,
    restrict,
    restrict_to_reachable,
    sync_label,
)


class TestLabels:
    def test_sync_label_format(self):
        assert sync_label("A.push", "B.pull") == "A.push#B.pull"

    def test_local_label(self):
        assert local_label("S", "serve") == "S.serve"

    def test_exact_match(self):
        assert matches("A.push", "A.push")

    def test_participant_match(self):
        assert matches("A.push", "A.push#B.pull")
        assert matches("B.pull", "A.push#B.pull")

    def test_non_participant_no_match(self):
        assert not matches("A.pull", "A.push#B.pull")

    def test_instance_wildcard(self):
        assert matches("DPM.*", "DPM.send_shutdown#S.receive_shutdown")
        assert matches("DPM.*", "DPM.tick")
        assert not matches("DPM.*", "S.receive#C.send")

    def test_tau_only_matches_itself(self):
        assert matches(TAU, TAU)
        assert not matches("A.push", TAU)
        assert not matches("tau.*", TAU)

    def test_matches_any(self):
        assert matches_any(["X.a", "Y.b"], "Y.b#Z.c")
        assert not matches_any([], "Y.b")


class TestLTSStructure:
    def test_add_states_and_transitions(self):
        lts = LTS()
        s0, s1 = lts.add_state("zero"), lts.add_state("one")
        lts.add_transition(s0, "a", s1, ExpRate(2.0), "E", 0.5)
        assert lts.num_states == 2
        assert lts.num_transitions == 1
        transition = lts.transitions[0]
        assert transition.event == "E"
        assert transition.weight == 0.5
        assert lts.state_info(0) == "zero"

    def test_dangling_transition_rejected(self):
        lts = LTS()
        lts.add_state()
        with pytest.raises(AnalysisError):
            lts.add_transition(0, "a", 7)

    def test_successors(self):
        lts = build_lts(3, [(0, "a", 1), (0, "a", 2), (0, "b", 1)])
        assert sorted(lts.successors(0, "a")) == [1, 2]
        assert lts.successors(1, "a") == []

    def test_deadlock_detection(self):
        lts = build_lts(2, [(0, "a", 1)])
        assert lts.has_deadlock()
        assert lts.deadlock_states() == [1]

    def test_copy_is_independent(self):
        lts = build_lts(2, [(0, "a", 1)])
        clone = lts.copy()
        clone.add_state()
        assert lts.num_states == 2
        assert clone.num_states == 3

    def test_visible_labels_excludes_tau(self):
        lts = build_lts(2, [(0, "a", 1), (1, TAU, 0)])
        assert lts.visible_labels() == {"a"}


class TestOperators:
    def test_hide_by_pattern(self):
        lts = build_lts(2, [(0, "X.a", 1), (1, "Y.b", 0)])
        hidden = hide(lts, ["X.a"])
        assert {t.label for t in hidden.transitions} == {TAU, "Y.b"}

    def test_hide_by_predicate(self):
        lts = build_lts(2, [(0, "X.a", 1), (1, "Y.b", 0)])
        hidden = hide(lts, lambda label: label.startswith("Y"))
        assert {t.label for t in hidden.transitions} == {"X.a", TAU}

    def test_hide_preserves_rates_and_events(self):
        lts = LTS()
        lts.add_state()
        lts.add_state()
        lts.add_transition(0, "X.a", 1, ExpRate(2.0), "X.a", 0.5)
        hidden = hide(lts, ["X.a"])
        assert hidden.transitions[0].rate == ExpRate(2.0)
        assert hidden.transitions[0].weight == 0.5

    def test_restrict_removes_and_prunes(self):
        lts = build_lts(3, [(0, "keep", 1), (0, "drop", 2), (2, "keep", 0)])
        restricted = restrict(lts, ["drop"])
        assert restricted.num_states == 2  # state 2 unreachable now
        assert {t.label for t in restricted.transitions} == {"keep"}

    def test_restrict_without_pruning(self):
        lts = build_lts(3, [(0, "keep", 1), (0, "drop", 2)])
        restricted = restrict(lts, ["drop"], prune=False)
        assert restricted.num_states == 3

    def test_restrict_matches_sync_participants(self):
        lts = build_lts(2, [(0, "DPM.kill#S.die", 1), (1, "S.work", 0)])
        restricted = restrict(lts, ["DPM.kill"])
        assert {t.label for t in restricted.transitions} == set()

    def test_relabel(self):
        lts = build_lts(2, [(0, "a", 1)])
        renamed = relabel(lts, lambda label: label.upper())
        assert {t.label for t in renamed.transitions} == {"A"}

    def test_disjoint_union_offsets(self):
        first = build_lts(2, [(0, "a", 1)])
        second = build_lts(3, [(0, "b", 1), (1, "b", 2)], initial=1)
        union, init_a, init_b = disjoint_union(first, second)
        assert union.num_states == 5
        assert init_a == 0
        assert init_b == 3  # 1 + offset 2
        assert union.num_transitions == 3


class TestReachability:
    def test_reachable_states(self):
        lts = build_lts(4, [(0, "a", 1), (1, "b", 0), (2, "c", 3)])
        assert reachable_states(lts) == {0, 1}
        assert reachable_states(lts, 2) == {2, 3}

    def test_restrict_to_reachable_renumbers(self):
        lts = build_lts(4, [(0, "a", 2), (2, "b", 0), (1, "x", 3)])
        trimmed = restrict_to_reachable(lts)
        assert trimmed.num_states == 2
        assert {t.label for t in trimmed.transitions} == {"a", "b"}
        assert trimmed.initial == 0

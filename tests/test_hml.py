"""Tests for weak Hennessy-Milner formulas: satisfaction and rendering."""

import pytest

from repro.lts import (
    And,
    DiamondWeak,
    Not,
    TAU,
    Top,
    WeakStructure,
    build_lts,
    conjunction,
)


@pytest.fixture()
def structure():
    # 0 --a--> 1 --tau--> 2 --b--> 3 ; 0 --a--> 4 (deadlock)
    lts = build_lts(
        5, [(0, "a", 1), (1, TAU, 2), (2, "b", 3), (0, "a", 4)]
    )
    return WeakStructure(lts)


class TestSatisfaction:
    def test_top_everywhere(self, structure):
        assert Top().satisfied_by(structure, 0)
        assert Top().satisfied_by(structure, 3)

    def test_diamond_visible(self, structure):
        formula = DiamondWeak("a", Top())
        assert formula.satisfied_by(structure, 0)
        assert not formula.satisfied_by(structure, 1)

    def test_diamond_through_tau(self, structure):
        # 1 =b=> 3 via the tau to 2.
        formula = DiamondWeak("b", Top())
        assert formula.satisfied_by(structure, 1)
        assert formula.satisfied_by(structure, 2)
        assert not formula.satisfied_by(structure, 4)

    def test_nested_diamond(self, structure):
        formula = DiamondWeak("a", DiamondWeak("b", Top()))
        assert formula.satisfied_by(structure, 0)

    def test_negation(self, structure):
        formula = Not(DiamondWeak("b", Top()))
        assert formula.satisfied_by(structure, 4)
        assert not formula.satisfied_by(structure, 1)

    def test_conjunction_semantics(self, structure):
        both = And((DiamondWeak("a", Top()), Not(DiamondWeak("b", Top()))))
        assert both.satisfied_by(structure, 0)

    def test_diamond_tau_includes_empty_move(self, structure):
        # <<tau>>phi holds if phi holds here (empty move).
        formula = DiamondWeak(TAU, DiamondWeak("a", Top()))
        assert formula.satisfied_by(structure, 0)

    def test_existential_over_branches(self, structure):
        """0 has two a-successors; one satisfies <<b>>T, which suffices."""
        formula = DiamondWeak("a", DiamondWeak("b", Top()))
        assert formula.satisfied_by(structure, 0)


class TestRendering:
    def test_top(self):
        assert Top().render() == "TRUE"

    def test_diamond_twotowers_style(self):
        text = DiamondWeak("C.send#RCS.get", Top()).render()
        assert "EXISTS_WEAK_TRANS(" in text
        assert "LABEL(C.send#RCS.get);" in text
        assert "REACHED_STATE_SAT(" in text
        assert "TRUE" in text

    def test_not_wraps(self):
        text = Not(Top()).render()
        assert text.startswith("NOT(")

    def test_and_renders_all(self):
        text = And((Top(), Not(Top()))).render()
        assert "AND(" in text

    def test_nested_structure_matches_paper_shape(self):
        """The Sect. 3.1 diagnostic shape renders as in the paper."""
        formula = DiamondWeak(
            "C.send_rpc_packet#RCS.get_packet",
            Not(
                DiamondWeak(
                    "RSC.deliver_packet#C.receive_result_packet", Top()
                )
            ),
        )
        text = formula.render()
        assert text.index("EXISTS_WEAK_TRANS") < text.index("NOT")
        assert text.count("EXISTS_WEAK_TRANS") == 2


class TestConjunctionHelper:
    def test_empty_is_top(self):
        assert isinstance(conjunction([]), Top)

    def test_single_passes_through(self):
        formula = DiamondWeak("a", Top())
        assert conjunction([formula]) is formula

    def test_duplicates_removed(self):
        formula = DiamondWeak("a", Top())
        combined = conjunction([formula, formula, formula])
        assert combined is formula

    def test_top_operands_dropped(self):
        formula = DiamondWeak("a", Top())
        assert conjunction([Top(), formula, Top()]) is formula

    def test_distinct_operands_kept(self):
        first = DiamondWeak("a", Top())
        second = DiamondWeak("b", Top())
        combined = conjunction([first, second])
        assert isinstance(combined, And)
        assert len(combined.operands) == 2


class TestSize:
    def test_sizes(self):
        assert Top().size() == 1
        assert Not(Top()).size() == 2
        assert DiamondWeak("a", Top()).size() == 2
        assert And((Top(), Not(Top()))).size() == 4

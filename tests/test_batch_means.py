"""Tests for batch-means output analysis."""

import pytest

from repro.aemilia.rates import ExpRate
from repro.ctmc import measure, state_clause, trans_clause
from repro.errors import SimulationError
from repro.lts import LTS
from repro.sim import replicate
from repro.sim.batch_means import batch_means


def two_state_lts():
    lts = LTS(0)
    for _ in range(2):
        lts.add_state()
    lts.add_transition(0, "up", 1, ExpRate(2.0), "up")
    lts.add_transition(1, "down", 0, ExpRate(3.0), "down")
    return lts


MEASURES = [
    measure("in0", state_clause("up", 1.0)),
    measure("ups", trans_clause("up", 1.0)),
]


class TestBatchMeans:
    def test_estimates_converge_to_truth(self):
        result = batch_means(
            two_state_lts(), MEASURES, batch_length=2_000.0, batches=12,
            seed=3,
        )
        assert result["in0"].mean == pytest.approx(0.6, rel=0.03)
        assert result["ups"].mean == pytest.approx(1.2, rel=0.03)

    def test_agrees_with_replications(self):
        lts = two_state_lts()
        batch = batch_means(
            lts, MEASURES, batch_length=1_500.0, batches=10, seed=5
        )
        repl = replicate(lts, MEASURES, run_length=1_500.0, runs=10, seed=5)
        assert batch["in0"].mean == pytest.approx(
            repl["in0"].mean, abs=3 * (batch["in0"].half_width
                                        + repl["in0"].half_width)
        )

    def test_low_autocorrelation_for_long_batches(self):
        result = batch_means(
            two_state_lts(), MEASURES, batch_length=3_000.0, batches=10,
            seed=7,
        )
        assert abs(result.lag1_autocorrelation["in0"]) < 0.5

    def test_batch_count_and_samples(self):
        result = batch_means(
            two_state_lts(), MEASURES, batch_length=200.0, batches=6, seed=1
        )
        assert len(result.batch_means["in0"]) == 6
        assert result["in0"].runs == 6

    def test_deterministic_given_seed(self):
        first = batch_means(
            two_state_lts(), MEASURES, batch_length=300.0, batches=4, seed=9
        )
        second = batch_means(
            two_state_lts(), MEASURES, batch_length=300.0, batches=4, seed=9
        )
        assert first.batch_means == second.batch_means

    def test_validation(self):
        with pytest.raises(SimulationError):
            batch_means(two_state_lts(), MEASURES, batch_length=100.0, batches=1)
        with pytest.raises(SimulationError):
            batch_means(two_state_lts(), MEASURES, batch_length=0.0)

    def test_clock_carry_regression_deterministic_timer(self):
        """Batch boundaries must not act as regeneration points.

        Earlier versions discarded the residual event clocks at every
        batch boundary.  For a deterministic timer longer than a batch
        the timer then NEVER fired: each batch resampled the full delay
        and ran out of horizon before it elapsed, so the estimate was
        systematically biased (here: 1.0 instead of 0.75) — a bias that
        no amount of batches shrinks.  With the clocks carried through
        ``simulator.run(..., start_clocks=...)`` the concatenated
        batches are one trajectory and the deterministic cycle is exact.
        """
        lts, m = self._deterministic_cycle()
        result = batch_means(
            lts, [m], batch_length=100.0, batches=8, seed=11
        )
        # Cycle: 150 time units with the long timer armed, 50 without.
        assert result["armed"].mean == pytest.approx(0.75, abs=1e-9)

    def test_clock_carry_agrees_with_replications(self):
        """On the deterministic-delay model batch means and independent
        replications now estimate the same (exact) value; the old
        clock-discarding batch means did not."""
        lts, m = self._deterministic_cycle()
        batch = batch_means(
            lts, [m], batch_length=100.0, batches=8, seed=11
        )
        repl = replicate(lts, [m], run_length=800.0, runs=3, seed=11)
        assert batch["armed"].mean == pytest.approx(
            repl["armed"].mean, abs=1e-9
        )

    @staticmethod
    def _deterministic_cycle():
        """0 --tick Det(150)--> 1 --tock Det(50)--> 0."""
        from repro.aemilia.rates import GeneralRate
        from repro.distributions import Deterministic

        lts = LTS(0)
        for _ in range(2):
            lts.add_state()
        lts.add_transition(
            0, "tick", 1, GeneralRate(Deterministic(150.0)), "tick"
        )
        lts.add_transition(
            1, "tock", 0, GeneralRate(Deterministic(50.0)), "tock"
        )
        return lts, measure("armed", state_clause("tick", 1.0))

    def test_warmup_applies_once(self):
        """With a deterministic boot phase, only the first batch is
        affected unless the warm-up removes it."""
        from repro.aemilia.rates import GeneralRate
        from repro.distributions import Deterministic

        lts = LTS(0)
        for _ in range(3):
            lts.add_state()
        lts.add_transition(
            0, "boot", 1, GeneralRate(Deterministic(400.0)), "boot"
        )
        lts.add_transition(1, "work", 2, ExpRate(1.0), "work")
        lts.add_transition(2, "rest", 1, ExpRate(1.0), "rest")
        m = measure("working", state_clause("rest", 1.0))
        clean = batch_means(
            lts, [m], batch_length=500.0, batches=8, warmup=500.0, seed=2
        )
        assert clean["working"].mean == pytest.approx(0.5, abs=0.05)

"""Differential tests across the methodology's phases (Sect. 5.1).

Two oracles, both case studies:

* the discrete-event simulator against the analytic CTMC solver — the
  general model with exponentials plugged in must reproduce the
  steady-state measures within the confidence-interval tolerance (the
  paper's own validation protocol);
* the structural state-space cache against fresh generation — a cached
  (relabeled) sweep must be *bit-identical* to an uncached one at
  randomly drawn sweep points, for the analytic and simulated pipelines
  alike.
"""

import random

import pytest

from repro.core.methodology import IncrementalMethodology
from repro.runtime import StructuralStateSpaceCache

VALIDATION_SETTINGS = {
    # (runs, run_length, warmup, relative_tolerance): small enough for
    # CI, large enough that the paper's protocol verdict is stable.
    "rpc": (8, 3_000.0, 200.0, 0.10),
    "streaming": (6, 4_000.0, 200.0, 0.15),
}

SWEEP_RANGES = {
    "rpc": ("shutdown_timeout", 0.5, 25.0),
    "streaming": ("awake_period", 10.0, 100.0),
}


@pytest.fixture
def families(rpc_family, streaming_family):
    return {"rpc": rpc_family, "streaming": streaming_family}


def _random_points(case, count=3):
    """Deterministically seeded 'random' sweep points inside the range."""
    parameter, low, high = SWEEP_RANGES[case]
    rng = random.Random(f"differential:{case}")
    return parameter, [
        round(rng.uniform(low, high), 3) for _ in range(count)
    ]


@pytest.mark.parametrize("case", sorted(VALIDATION_SETTINGS))
class TestSimulatorVsAnalytic:
    def test_general_model_reproduces_ctmc_steady_state(
        self, case, families
    ):
        """Exponential plug-in, simulate, compare to the analytic values.

        Every measure's analytic value must fall inside the simulated
        confidence interval (or within the relative tolerance for
        near-zero measures) — the differential oracle the paper itself
        uses to trust its general models.
        """
        runs, run_length, warmup, tolerance = VALIDATION_SETTINGS[case]
        report = IncrementalMethodology(families[case]).validate(
            runs=runs,
            run_length=run_length,
            warmup=warmup,
            relative_tolerance=tolerance,
        )
        assert report.passed, str(report)


@pytest.mark.parametrize("case", sorted(SWEEP_RANGES))
class TestCachedVsFreshSweeps:
    def test_markovian_sweep_bit_identical(self, case, families):
        parameter, points = _random_points(case)
        cached_methodology = IncrementalMethodology(families[case])
        cached = cached_methodology.sweep_markovian(parameter, points)
        uncached = IncrementalMethodology(
            families[case],
            statespace_cache=StructuralStateSpaceCache(enabled=False),
        ).sweep_markovian(parameter, points)
        # ==, not approx: relabeling replays the recorded provenance, so
        # every float must be the exact bits fresh generation produces.
        assert cached == uncached
        # Non-vacuous: the cached run really did relabel the skeleton.
        assert cached_methodology.cache.stats.relabels >= len(points) - 1

    def test_general_sweep_bit_identical(self, case, families):
        parameter, points = _random_points(case)
        simulation = dict(run_length=800.0, runs=2, seed=7)
        cached = IncrementalMethodology(families[case]).sweep_general(
            parameter, points, **simulation
        )
        uncached = IncrementalMethodology(
            families[case],
            statespace_cache=StructuralStateSpaceCache(enabled=False),
        ).sweep_general(parameter, points, **simulation)
        assert cached == uncached

"""Tests for the beyond-the-paper extension experiments."""

import pytest

from repro.casestudies.rpc import battery
from repro.experiments.extensions import battery_lifetime, sensitivity


class TestBatteryModel:
    def test_specs_parse(self):
        assert battery.dpm_architecture().name == "Rpc_Battery_Dpm"
        assert battery.nodpm_architecture().name == "Rpc_Battery_Nodpm"

    def test_empty_states_exist(self):
        from repro.aemilia import generate_lts
        from repro.ctmc import build_ctmc

        lts = generate_lts(
            battery.dpm_architecture(), {"battery_capacity": 5}
        )
        ctmc = build_ctmc(lts)
        empty = battery.empty_battery_states(ctmc)
        assert empty
        assert len(empty) < ctmc.num_states

    def test_lifetime_scales_with_capacity(self):
        small = battery.expected_lifetime(
            battery.nodpm_architecture(), {"battery_capacity": 5}
        )
        large = battery.expected_lifetime(
            battery.nodpm_architecture(), {"battery_capacity": 15}
        )
        assert large == pytest.approx(3 * small, rel=0.05)

    def test_nodpm_lifetime_matches_average_power(self):
        """Drain rate = power x scale; lifetime ~ capacity/(E[power]*scale).

        NO-DPM average power is ~2.04 (fig3 data), scale 0.05 =>
        ~0.102 units/ms => 15 units last ~147 ms.
        """
        lifetime = battery.expected_lifetime(
            battery.nodpm_architecture(), {"battery_capacity": 15}
        )
        assert lifetime == pytest.approx(15.0 / (2.04 * 0.05), rel=0.05)


class TestBatteryExperiment:
    def test_dpm_extends_lifetime(self):
        result = battery_lifetime(timeouts=(1.0, 15.0), capacity=10)
        assert result.extension_factor(1.0) > 1.5
        assert result.extension_factor(15.0) > 1.0
        # Shorter timeout, longer life.
        assert result.lifetimes[1.0] > result.lifetimes[15.0]

    def test_report_renders(self):
        result = battery_lifetime(timeouts=(5.0,), capacity=10)
        text = result.report()
        assert "ext-battery" in text
        assert "NO-DPM" in text


class TestSurvival:
    def test_survival_is_monotone_decreasing(self):
        from repro.experiments.extensions import battery_survival

        result = battery_survival(
            times=(50.0, 150.0, 300.0), capacity=8
        )
        assert result.dpm_survival == sorted(
            result.dpm_survival, reverse=True
        )
        assert result.nodpm_survival == sorted(
            result.nodpm_survival, reverse=True
        )

    def test_dpm_survives_longer(self):
        from repro.experiments.extensions import battery_survival

        result = battery_survival(times=(150.0,), capacity=8)
        assert result.dpm_survival[0] > result.nodpm_survival[0]

    def test_probabilities_valid(self):
        from repro.experiments.extensions import battery_survival

        result = battery_survival(times=(10.0, 500.0), capacity=6)
        for value in result.dpm_survival + result.nodpm_survival:
            assert 0.0 <= value <= 1.0

    def test_report_renders(self):
        from repro.experiments.extensions import battery_survival

        result = battery_survival(times=(50.0, 100.0), capacity=6)
        text = result.report()
        assert "ext-survival" in text
        assert "P(alive)" in text


class TestSensitivity:
    def test_longer_processing_more_saving(self):
        result = sensitivity(
            "proc_time", values=(3.0, 9.7, 40.0), timeout=5.0
        )
        # More idle time -> more DPM opportunity.
        assert result.savings[40.0] > result.savings[9.7] > result.savings[3.0]

    def test_savings_are_fractions(self):
        result = sensitivity("proc_time", values=(9.7,), timeout=5.0)
        assert 0.0 < result.savings[9.7] < 1.0
        assert 0.0 < result.throughput_costs[9.7] < 1.0

    def test_report_renders(self):
        result = sensitivity("proc_time", values=(9.7,))
        assert "ext-sensitivity" in result.report()

    def test_loss_probability_sweep(self):
        result = sensitivity(
            "loss_prob", values=(0.01, 0.2), timeout=5.0
        )
        assert set(result.savings) == {0.01, 0.2}


class TestRegistry:
    def test_extensions_registered(self):
        from repro.experiments import all_experiments

        experiments = all_experiments()
        assert "ext-battery" in experiments
        assert "ext-sensitivity" in experiments

    def test_quick_run_via_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["ext-battery", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "expected lifetime" in out

"""Tests for accumulated rewards and absorption analysis."""

import math

import numpy as np
import pytest

from repro.ctmc import CTMC
from repro.ctmc.rewards import (
    absorption_probability,
    accumulated_state_reward,
    mean_time_to_absorption,
)
from repro.errors import SolverError


def two_state(lam=2.0, mu=3.0):
    ctmc = CTMC(2)
    ctmc.add_transition(0, 1, lam)
    ctmc.add_transition(1, 0, mu)
    return ctmc


def accumulated_closed_form(lam, mu, t):
    """Integral of P(state 1 at u), starting in state 0."""
    total = lam + mu
    weight = lam / total
    return weight * (t - (1.0 - math.exp(-total * t)) / total)


class TestAccumulatedReward:
    @pytest.mark.parametrize("t", [0.05, 0.3, 1.0, 4.0])
    def test_two_state_closed_form(self, t):
        lam, mu = 2.0, 3.0
        value = accumulated_state_reward(
            two_state(lam, mu), t, [0.0, 1.0]
        )
        assert value == pytest.approx(
            accumulated_closed_form(lam, mu, t), abs=1e-8
        )

    def test_zero_horizon(self):
        assert accumulated_state_reward(two_state(), 0.0, [1.0, 1.0]) == 0.0

    def test_constant_reward_accumulates_linearly(self):
        value = accumulated_state_reward(two_state(), 2.5, [4.0, 4.0])
        assert value == pytest.approx(10.0, rel=1e-9)

    def test_long_horizon_matches_steady_state_rate(self):
        """For large t, Y(t)/t -> steady-state reward rate."""
        from repro.ctmc import steady_state

        ctmc = two_state()
        rewards = np.array([2.0, 5.0])
        pi = steady_state(ctmc)
        t = 200.0
        value = accumulated_state_reward(ctmc, t, rewards)
        assert value / t == pytest.approx(float(pi @ rewards), rel=1e-3)

    def test_frozen_chain(self):
        ctmc = CTMC(2)
        value = accumulated_state_reward(ctmc, 3.0, [7.0, 0.0])
        assert value == pytest.approx(21.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            accumulated_state_reward(two_state(), -1.0, [1.0, 1.0])

    def test_wrong_reward_length_rejected(self):
        with pytest.raises(SolverError):
            accumulated_state_reward(two_state(), 1.0, [1.0])


class TestAbsorptionTime:
    def test_single_hop(self):
        ctmc = CTMC(2)
        ctmc.add_transition(0, 1, 4.0)
        times = mean_time_to_absorption(ctmc, [1])
        assert times[0] == pytest.approx(0.25)
        assert times[1] == 0.0

    def test_chain_of_stages(self):
        """Erlang: k stages of rate r -> mean k/r."""
        ctmc = CTMC(4)
        for stage in range(3):
            ctmc.add_transition(stage, stage + 1, 2.0)
        times = mean_time_to_absorption(ctmc, [3])
        assert times[0] == pytest.approx(1.5)
        assert times[1] == pytest.approx(1.0)

    def test_with_backtracking(self):
        """Birth-death with absorption at the top: classic result."""
        ctmc = CTMC(3)
        ctmc.add_transition(0, 1, 1.0)
        ctmc.add_transition(1, 0, 1.0)
        ctmc.add_transition(1, 2, 1.0)
        times = mean_time_to_absorption(ctmc, [2])
        # m0 = 1 + m1 ; m1 = 1/2 + m0/2  =>  m0 = 3, m1 = 2.
        assert times[0] == pytest.approx(3.0)
        assert times[1] == pytest.approx(2.0)

    def test_unreachable_absorption_rejected(self):
        ctmc = CTMC(3)
        ctmc.add_transition(0, 1, 1.0)
        ctmc.add_transition(1, 0, 1.0)
        # State 2 is absorbing but unreachable; 0/1 never absorb.
        with pytest.raises(SolverError, match="cannot reach"):
            mean_time_to_absorption(ctmc, [2])

    def test_empty_absorbing_set_rejected(self):
        with pytest.raises(SolverError):
            mean_time_to_absorption(two_state(), [])


class TestAbsorptionProbability:
    def test_gamblers_ruin(self):
        """Symmetric walk on 0..3 with absorbing ends."""
        ctmc = CTMC(4)
        for state in (1, 2):
            ctmc.add_transition(state, state - 1, 1.0)
            ctmc.add_transition(state, state + 1, 1.0)
        probabilities = absorption_probability(ctmc, target=[3], avoid=[0])
        assert probabilities[1] == pytest.approx(1.0 / 3.0)
        assert probabilities[2] == pytest.approx(2.0 / 3.0)
        assert probabilities[0] == 0.0
        assert probabilities[3] == 1.0

    def test_biased_walk(self):
        ctmc = CTMC(3)
        ctmc.add_transition(1, 0, 1.0)
        ctmc.add_transition(1, 2, 3.0)
        probabilities = absorption_probability(ctmc, target=[2], avoid=[0])
        assert probabilities[1] == pytest.approx(0.75)

    def test_overlapping_sets_rejected(self):
        with pytest.raises(SolverError):
            absorption_probability(two_state(), target=[0], avoid=[0])

    def test_battery_scenario(self):
        """A device that works (drains) and sleeps (drains slower):
        probability of finishing the job before the battery dies."""
        # States: 0 = working, 1 = done (target), 2 = battery dead (avoid).
        ctmc = CTMC(3)
        ctmc.add_transition(0, 1, 0.9)   # completion rate
        ctmc.add_transition(0, 2, 0.1)   # battery death rate
        probabilities = absorption_probability(ctmc, target=[1], avoid=[2])
        assert probabilities[0] == pytest.approx(0.9)

"""Kronecker generator algebra and the matrix-free solver contract."""

import numpy as np
import pytest
from scipy import sparse

from repro.ctmc.kronecker import (
    KroneckerGenerator,
    KroneckerOperator,
    KroneckerTerm,
    kron_vector,
)
from repro.ctmc.solvers import solve_steady_state
from repro.errors import AnalysisError, SolverError


def local_term(axis, matrix, label="local"):
    return KroneckerTerm(label, {axis: np.asarray(matrix, float)})


def random_generator(rng, dims=(3, 4, 2)):
    """A random irreducible-ish SAN: local terms plus one sync term."""
    terms = []
    for axis, dim in enumerate(dims):
        matrix = rng.uniform(0.1, 2.0, size=(dim, dim))
        np.fill_diagonal(matrix, 0.0)
        terms.append(local_term(axis, matrix, label=f"local{axis}"))
    # One synchronized event touching axes 0 and 1, guarded on axis 2.
    w0 = np.zeros((dims[0], dims[0]))
    w0[0, 1] = 1.5
    w1 = np.zeros((dims[1], dims[1]))
    w1[1, 0] = 0.7
    guard = np.ones(dims[2])
    guard[0] = 0.0
    terms.append(KroneckerTerm("sync", {0: w0, 1: w1, 2: guard}))
    return KroneckerGenerator(dims, terms)


class TestKroneckerAlgebra:
    def test_apply_matches_materialized(self):
        rng = np.random.default_rng(7)
        generator = random_generator(rng)
        flat = generator.materialize()
        x = rng.normal(size=generator.size)
        np.testing.assert_allclose(
            generator.apply(x), flat @ x, atol=1e-12
        )
        np.testing.assert_allclose(
            generator.apply(x, transpose=True), flat.T @ x, atol=1e-12
        )

    def test_diagonal_matches_materialized(self):
        generator = random_generator(np.random.default_rng(3))
        np.testing.assert_allclose(
            generator.diagonal(),
            generator.materialize().diagonal(),
            atol=1e-12,
        )

    def test_rows_sum_to_zero(self):
        generator = random_generator(np.random.default_rng(11))
        ones = np.ones(generator.size)
        np.testing.assert_allclose(
            generator.apply(ones), np.zeros(generator.size), atol=1e-12
        )

    def test_diagonal_guard_factor_blocks_states(self):
        # The sync term's guard zeroes axis-2 state 0: no sync flow may
        # leave any product state with component 2 in state 0.
        generator = random_generator(np.random.default_rng(5))
        flow = generator.flow_vector("sync").reshape(generator.dims)
        assert np.all(flow[:, :, 0] == 0.0)
        assert np.any(flow[:, :, 1] != 0.0)

    def test_flow_vector_matches_offdiagonal_rowsums(self):
        generator = random_generator(np.random.default_rng(2))
        total = np.zeros(generator.size)
        for label in ("local0", "local1", "local2", "sync"):
            total += generator.flow_vector(label)
        np.testing.assert_allclose(total, generator.outflow, atol=1e-12)

    def test_flow_vector_unknown_label(self):
        generator = random_generator(np.random.default_rng(2))
        with pytest.raises(AnalysisError):
            generator.flow_vector("nope")

    def test_kron_vector_lifts_per_axis_vectors(self):
        dims = (2, 3)
        lifted = kron_vector(
            dims, {0: np.array([1.0, 2.0]), 1: np.array([3.0, 4.0, 5.0])}
        )
        expected = np.kron([1.0, 2.0], [3.0, 4.0, 5.0])
        np.testing.assert_allclose(lifted, expected)

    def test_materialize_is_size_gated(self):
        generator = random_generator(np.random.default_rng(1))
        with pytest.raises(AnalysisError):
            generator.materialize(max_size=generator.size - 1)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            KroneckerGenerator(
                (2, 2), [local_term(0, np.zeros((3, 3)))]
            )
        with pytest.raises(AnalysisError):
            KroneckerGenerator(
                (2,), [local_term(4, np.zeros((2, 2)))]
            )

    def test_nnz_equivalent_counts_term_entries(self):
        generator = random_generator(np.random.default_rng(9))
        operator = generator.operator()
        assert operator.nnz_equivalent == generator.nnz_equivalent
        assert generator.nnz_equivalent > 0
        # Never worse than the dense product-space square.
        assert generator.nnz_equivalent <= generator.size**2 + generator.size


class TestMatrixFreeSolverContract:
    def setup_method(self):
        self.generator = random_generator(np.random.default_rng(42))
        self.flat = self.generator.materialize()

    def test_operator_solve_matches_sparse_solve(self):
        operator = self.generator.operator()
        free = solve_steady_state(operator)
        flat = solve_steady_state(sparse.csr_matrix(self.flat))
        np.testing.assert_allclose(free.pi, flat.pi, atol=1e-9)
        assert operator.matvec_count > 0
        assert free.report.residual <= 1e-10 * max(
            1.0, np.abs(self.generator.diagonal()).max()
        )

    def test_auto_skips_materializing_backends(self):
        solution = solve_steady_state(self.generator.operator())
        assert solution.report.method in ("gmres", "power")
        assert "direct" not in solution.report.fallbacks
        assert "sor" not in solution.report.fallbacks

    @pytest.mark.parametrize("method", ["direct", "sor"])
    def test_materializing_backends_raise_typed_error(self, method):
        with pytest.raises(SolverError) as excinfo:
            solve_steady_state(self.generator.operator(), method=method)
        assert excinfo.value.reason == "matrix_free_unsupported"

    def test_power_backend_works_matrix_free(self):
        free = solve_steady_state(self.generator.operator(), method="power")
        flat = solve_steady_state(sparse.csr_matrix(self.flat))
        np.testing.assert_allclose(free.pi, flat.pi, atol=1e-8)

    def test_operator_without_diagonal_rejected(self):
        from scipy.sparse import linalg as sparse_linalg

        bare = sparse_linalg.aslinearoperator(self.flat)
        with pytest.raises(SolverError) as excinfo:
            solve_steady_state(bare)
        assert excinfo.value.reason == "matrix_free_unsupported"

    def test_adjoint_roundtrip(self):
        operator = self.generator.operator()
        x = np.random.default_rng(0).normal(size=self.generator.size)
        np.testing.assert_allclose(
            operator.adjoint() @ x, self.flat.T @ x, atol=1e-12
        )

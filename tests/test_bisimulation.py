"""Tests for strong bisimulation and Markovian lumping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aemilia.rates import ExpRate, ImmediateRate
from repro.lts import (
    LTS,
    build_lts,
    disjoint_union,
    minimize,
    strong_bisimulation,
    strongly_bisimilar,
)


class TestStrongBisimulation:
    def test_identical_chains_bisimilar(self):
        first = build_lts(2, [(0, "a", 1), (1, "b", 0)])
        second = build_lts(2, [(0, "a", 1), (1, "b", 0)])
        assert strongly_bisimilar(first, second)

    def test_different_labels_not_bisimilar(self):
        first = build_lts(2, [(0, "a", 1)])
        second = build_lts(2, [(0, "b", 1)])
        assert not strongly_bisimilar(first, second)

    def test_unrolled_loop_bisimilar(self):
        loop = build_lts(1, [(0, "a", 0)])
        unrolled = build_lts(3, [(0, "a", 1), (1, "a", 2), (2, "a", 0)])
        assert strongly_bisimilar(loop, unrolled)

    def test_coffee_machines_not_strongly_bisimilar(self, coffee_machines):
        deterministic, nondeterministic = coffee_machines
        assert not strongly_bisimilar(deterministic, nondeterministic)

    def test_partition_blocks(self):
        lts = build_lts(4, [(0, "a", 1), (2, "a", 3)])
        result = strong_bisimulation(lts)
        # 0 and 2 behave identically, so do 1 and 3 (deadlocked).
        assert result.equivalent(0, 2)
        assert result.equivalent(1, 3)
        assert not result.equivalent(0, 1)
        assert result.num_blocks == 2

    def test_separation_levels_monotone(self):
        lts = build_lts(
            4, [(0, "a", 1), (1, "a", 2), (2, "a", 3)]
        )
        result = strong_bisimulation(lts)
        # 3 is deadlocked; 2 separates from 3 at the first level, 1 later.
        assert result.separation_level(2, 3) <= result.separation_level(1, 2)

    def test_blocks_listing(self):
        lts = build_lts(2, [(0, "a", 1)])
        result = strong_bisimulation(lts)
        blocks = result.blocks()
        assert sorted(sum(blocks, [])) == [0, 1]


class TestMinimize:
    def test_quotient_size(self):
        unrolled = build_lts(4, [(0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 0)])
        quotient = minimize(unrolled)
        assert quotient.num_states == 1
        assert quotient.num_transitions == 1

    def test_quotient_bisimilar_to_original(self):
        lts = build_lts(
            5, [(0, "a", 1), (0, "a", 2), (1, "b", 3), (2, "b", 4)]
        )
        quotient = minimize(lts)
        assert strongly_bisimilar(lts, quotient)
        assert quotient.num_states < lts.num_states


class TestMarkovianLumping:
    def _rated(self, triples):
        lts = LTS()
        states = 1 + max(max(s, t) for s, _, t, _ in triples)
        for _ in range(states):
            lts.add_state()
        for source, label, target, rate in triples:
            lts.add_transition(source, label, target, ExpRate(rate))
        return lts

    def test_rates_distinguish(self):
        fast = self._rated([(0, "a", 1, 2.0)])
        slow = self._rated([(0, "a", 1, 1.0)])
        assert strongly_bisimilar(fast, slow)  # labels only
        assert not strongly_bisimilar(fast, slow, markovian=True)

    def test_aggregate_rates_lump(self):
        """Two parallel a-transitions at rate 1 lump with one at rate 2."""
        split = self._rated([(0, "a", 1, 1.0), (0, "a", 2, 1.0),
                             (1, "b", 0, 3.0), (2, "b", 0, 3.0)])
        merged = self._rated([(0, "a", 1, 2.0), (1, "b", 0, 3.0)])
        assert strongly_bisimilar(split, merged, markovian=True)

    def test_immediate_weights_respected(self):
        lts_a = LTS()
        for _ in range(3):
            lts_a.add_state()
        lts_a.add_transition(0, "x", 1, ImmediateRate(1, 1.0))
        lts_a.add_transition(0, "x", 2, ImmediateRate(1, 3.0))
        lts_b = LTS()
        for _ in range(3):
            lts_b.add_state()
        lts_b.add_transition(0, "x", 1, ImmediateRate(1, 3.0))
        lts_b.add_transition(0, "x", 2, ImmediateRate(1, 1.0))
        result_a = strong_bisimulation(lts_a, markovian=True)
        # 1 and 2 are both deadlocked hence equivalent, so the weights
        # merge and the two variants are symmetric.
        assert result_a.equivalent(1, 2)
        assert strongly_bisimilar(lts_a, lts_b, markovian=True)


@st.composite
def random_lts(draw, max_states=6, labels=("a", "b")):
    n = draw(st.integers(1, max_states))
    transitions = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from(labels),
                st.integers(0, n - 1),
            ),
            max_size=12,
        )
    )
    return build_lts(n, transitions)


@settings(max_examples=60, deadline=None)
@given(random_lts())
def test_bisimilarity_is_reflexive(lts):
    assert strongly_bisimilar(lts, lts)


@settings(max_examples=60, deadline=None)
@given(random_lts(), random_lts())
def test_bisimilarity_is_symmetric(first, second):
    assert strongly_bisimilar(first, second) == strongly_bisimilar(
        second, first
    )


@settings(max_examples=40, deadline=None)
@given(random_lts())
def test_minimize_preserves_bisimilarity(lts):
    assert strongly_bisimilar(lts, minimize(lts))


@settings(max_examples=40, deadline=None)
@given(random_lts())
def test_partition_is_equivalence_relation(lts):
    result = strong_bisimulation(lts)
    union, init_a, init_b = disjoint_union(lts, lts)
    mirrored = strong_bisimulation(union)
    # Each state must be equivalent to its own copy.
    for state in lts.states():
        assert mirrored.equivalent(state, state + lts.num_states)
